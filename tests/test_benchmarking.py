"""Tests of the committed performance-baseline machinery."""

from __future__ import annotations

import json

import pytest

from repro import benchmarking
from repro.benchmarking import (
    BaselineError,
    calibration_seconds,
    compare_to_baseline,
    load_baseline,
    load_results,
    main,
    record_baseline,
)


def _write_results(path, means, calibration_s=0.02):
    payload = {
        "benchmarks": [
            {
                "fullname": name,
                "stats": {"mean": mean},
                "extra_info": {"calibration_s": calibration_s},
            }
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


def test_calibration_is_cached_and_positive():
    first = calibration_seconds()
    assert first > 0
    assert calibration_seconds() == first  # cached per process


def test_load_results_parses_names_means_and_calibration(tmp_path):
    results_path = _write_results(tmp_path / "r.json", {"bench::a": 0.4})
    (result,) = load_results(results_path)
    assert result.name == "bench::a"
    assert result.mean_s == 0.4
    assert result.normalized == pytest.approx(0.4 / 0.02)


def test_load_results_rejects_empty_and_malformed_files(tmp_path):
    empty = tmp_path / "empty.json"
    empty.write_text(json.dumps({"benchmarks": []}))
    with pytest.raises(BaselineError):
        load_results(str(empty))
    malformed = tmp_path / "malformed.json"
    malformed.write_text(json.dumps({"benchmarks": [{"stats": {}}]}))
    with pytest.raises(BaselineError):
        load_results(str(malformed))


def test_record_then_compare_is_clean(tmp_path):
    results = _write_results(tmp_path / "r.json", {"bench::a": 0.4, "bench::b": 0.1})
    baseline = tmp_path / "baseline" / "BENCH_test.json"
    record_baseline(results, str(baseline))
    loaded = load_baseline(str(baseline))
    assert set(loaded["benchmarks"]) == {"bench::a", "bench::b"}
    report = compare_to_baseline(results, str(baseline))
    assert report.ok
    assert len(report.compared) == 2
    assert not report.new_benchmarks and not report.missing_benchmarks
    assert "ok" in report.render()


def test_regression_beyond_tolerance_fails_the_gate(tmp_path):
    baseline_results = _write_results(tmp_path / "old.json", {"bench::a": 0.4})
    baseline = str(tmp_path / "BENCH_test.json")
    record_baseline(baseline_results, baseline)

    slower = _write_results(tmp_path / "new.json", {"bench::a": 0.4 * 1.5})
    report = compare_to_baseline(slower, baseline)
    assert not report.ok
    (regression,) = report.regressions
    assert regression.ratio == pytest.approx(1.5)
    assert "REGRESSION" in report.render()

    # Within tolerance: 20% slower passes a 30% gate.
    slightly = _write_results(tmp_path / "slight.json", {"bench::a": 0.4 * 1.2})
    assert compare_to_baseline(slightly, baseline).ok
    # An explicit tighter tolerance turns it into a failure.
    assert not compare_to_baseline(slightly, baseline, tolerance=0.1).ok


def test_normalization_forgives_uniformly_slower_machines(tmp_path):
    baseline_results = _write_results(
        tmp_path / "old.json", {"bench::a": 0.4}, calibration_s=0.02
    )
    baseline = str(tmp_path / "BENCH_test.json")
    record_baseline(baseline_results, baseline)
    # A machine 3x slower overall: raw mean tripled, calibration tripled.
    slower_machine = _write_results(
        tmp_path / "new.json", {"bench::a": 1.2}, calibration_s=0.06
    )
    assert compare_to_baseline(slower_machine, baseline).ok


def test_new_and_missing_benchmarks_are_reported_not_gated(tmp_path):
    baseline_results = _write_results(
        tmp_path / "old.json", {"bench::a": 0.4, "bench::gone": 0.2}
    )
    baseline = str(tmp_path / "BENCH_test.json")
    record_baseline(baseline_results, baseline)
    current = _write_results(
        tmp_path / "new.json", {"bench::a": 0.4, "bench::fresh": 9.9}
    )
    report = compare_to_baseline(current, baseline)
    assert report.ok
    assert report.new_benchmarks == ["bench::fresh"]
    assert report.missing_benchmarks == ["bench::gone"]
    rendered = report.render()
    assert "bench::fresh" in rendered and "bench::gone" in rendered


def test_load_baseline_rejects_unknown_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": 99, "benchmarks": {}}))
    with pytest.raises(BaselineError):
        load_baseline(str(bad))
    no_table = tmp_path / "no_table.json"
    no_table.write_text(json.dumps({"schema": 1}))
    with pytest.raises(BaselineError):
        load_baseline(str(no_table))


def test_cli_record_and_compare_paths(tmp_path, capsys, monkeypatch):
    results = _write_results(tmp_path / "r.json", {"bench::a": 0.4})
    baseline = str(tmp_path / "BENCH_test.json")
    assert main(["record", results, baseline]) == 0
    assert main(["compare", results, baseline]) == 0

    slower = _write_results(tmp_path / "slow.json", {"bench::a": 1.4})
    assert main(["compare", slower, baseline]) == 1
    assert main(["compare", slower, baseline, "--allow-regression"]) == 0
    monkeypatch.setenv("REPRO_BENCH_ALLOW_REGRESSION", "1")
    assert main(["compare", slower, baseline]) == 0
    out = capsys.readouterr().out
    assert "override active" in out


def test_run_once_stamps_calibration_and_respects_rounds(monkeypatch):
    calls = []

    class FakeBenchmark:
        def __init__(self):
            self.extra_info = {}

        def pedantic(self, function, args=(), kwargs=None, rounds=1, iterations=1):
            calls.append(rounds)
            return function(*args, **(kwargs or {}))

    monkeypatch.setenv("REPRO_BENCH_ROUNDS", "3")
    fake = FakeBenchmark()
    result = benchmarking.run_once(fake, lambda x: x + 1, 41)
    assert result == 42
    assert calls == [3]
    assert fake.extra_info["calibration_s"] > 0


def test_load_results_falls_back_to_local_calibration(tmp_path):
    payload = {"benchmarks": [{"fullname": "bench::x", "stats": {"mean": 0.5}}]}
    path = tmp_path / "r.json"
    path.write_text(json.dumps(payload))
    with pytest.warns(UserWarning):
        (result,) = load_results(str(path))
    assert result.calibration_s == calibration_seconds()
    assert result.normalized > 0


def test_empty_comparison_fails_the_gate_even_with_override(tmp_path, monkeypatch):
    baseline_results = _write_results(tmp_path / "old.json", {"bench::a": 0.4})
    baseline = str(tmp_path / "BENCH_test.json")
    record_baseline(baseline_results, baseline)
    renamed = _write_results(tmp_path / "renamed.json", {"other::a": 0.4})
    report = compare_to_baseline(renamed, baseline)
    assert not report.ok and not report.regressions
    assert main(["compare", renamed, baseline]) == 1
    # The override must not bless a comparison that never happened.
    assert main(["compare", renamed, baseline, "--allow-regression"]) == 1
    monkeypatch.setenv("REPRO_BENCH_ALLOW_REGRESSION", "1")
    assert main(["compare", renamed, baseline]) == 1


def test_missing_calibration_fallback_warns(tmp_path):
    payload = {"benchmarks": [{"fullname": "bench::x", "stats": {"mean": 0.5}}]}
    path = tmp_path / "r.json"
    path.write_text(json.dumps(payload))
    with pytest.warns(UserWarning, match="no recorded calibration_s"):
        (result,) = load_results(str(path))
    assert result.calibration_s == calibration_seconds()


# ----------------------------------------------------------------------
# Cumulative perf trajectory
# ----------------------------------------------------------------------
def _write_results_with_replications(path, means, replications):
    payload = {
        "benchmarks": [
            {
                "fullname": name,
                "stats": {"mean": mean},
                "extra_info": {"calibration_s": 0.02, "replications": replications},
            }
            for name, mean in means.items()
        ]
    }
    path.write_text(json.dumps(payload))
    return str(path)


def test_report_trajectory_appends_and_computes_reps_per_s(tmp_path):
    results = _write_results_with_replications(
        tmp_path / "r.json", {"bench::solve": 0.5}, replications=200
    )
    trajectory_path = str(tmp_path / "BENCH_trajectory.json")
    trajectory = benchmarking.report_trajectory(results, trajectory_path, "PR-9")
    (entry,) = trajectory["entries"]
    assert entry["label"] == "PR-9"
    assert entry["benchmarks"]["bench::solve"]["reps_per_s"] == pytest.approx(400.0)
    assert entry["benchmarks"]["bench::solve"]["replications"] == 200
    rendered = benchmarking.render_trajectory(benchmarking.load_trajectory(trajectory_path))
    assert "PR-9" in rendered and "bench::solve" in rendered


def test_report_trajectory_refreshes_existing_label_in_place(tmp_path):
    trajectory_path = str(tmp_path / "BENCH_trajectory.json")
    first = _write_results_with_replications(
        tmp_path / "a.json", {"bench::solve": 0.5}, replications=200
    )
    benchmarking.report_trajectory(first, trajectory_path, "PR-8")
    benchmarking.report_trajectory(first, trajectory_path, "PR-9")
    rerun = _write_results_with_replications(
        tmp_path / "b.json", {"bench::solve": 0.25}, replications=200
    )
    trajectory = benchmarking.report_trajectory(rerun, trajectory_path, "PR-9")
    labels = [entry["label"] for entry in trajectory["entries"]]
    assert labels == ["PR-8", "PR-9"]  # refreshed in place, order kept
    assert trajectory["entries"][1]["benchmarks"]["bench::solve"][
        "reps_per_s"
    ] == pytest.approx(800.0)


def test_load_trajectory_rejects_unknown_schema(tmp_path):
    bad = tmp_path / "bad.json"
    bad.write_text(json.dumps({"schema": 99, "entries": []}))
    with pytest.raises(BaselineError):
        benchmarking.load_trajectory(str(bad))


def test_cli_report_writes_trajectory(tmp_path, capsys):
    results = _write_results_with_replications(
        tmp_path / "r.json", {"bench::solve": 0.5}, replications=100
    )
    trajectory_path = str(tmp_path / "BENCH_trajectory.json")
    assert main(["report", results, trajectory_path, "--label", "PR-9"]) == 0
    out = capsys.readouterr().out
    assert "PR-9" in out
    assert json.loads((tmp_path / "BENCH_trajectory.json").read_text())["entries"]
