"""DET003 fixture: draws from hidden module-level RNG state."""

import random

import numpy as np
from random import gauss


def draw():
    a = random.random()  # finding: stdlib global stream
    b = gauss(0.0, 1.0)  # finding: from-imported stdlib global stream
    np.random.seed(7)  # finding: reseeds the numpy global state
    c = np.random.rand(3)  # finding: draws from the numpy global state
    rng = np.random.default_rng()  # finding: unseeded generator
    return a, b, c, rng
