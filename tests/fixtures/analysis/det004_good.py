"""DET004 fixture: simulated time comes from the simulator."""


def stamp(event, sim):
    event.at = sim.now  # simulated clock, not the host clock
    return event
