"""PICKLE001 fixture: module-level point functions pickle fine."""

from repro.experiments.runner import ReplicationPlan, SweepPoint


def run_one(value, point_seed):  # module level: picklable
    return value * point_seed


def build_plan(settings, values):
    points = tuple(
        SweepPoint.make(run_one, {"value": v}, indices=(i,))
        for i, v in enumerate(values)
    )
    return ReplicationPlan(settings=settings, points=points)
