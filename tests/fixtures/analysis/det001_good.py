"""DET001 fixture: the compliant spellings of det001_bad.py."""


def totals(counts):
    out = []
    for name, value in sorted(counts.items()):  # sorted() imposes an order
        out.append((name, value))
    total = sum(value for value in counts.values())  # order-insensitive reducer
    live = any(value > 0 for value in counts.values())  # order-insensitive reducer
    names = {name for name in counts.keys()}  # set comprehension: a set again
    width = len(set(names))  # len() is order-insensitive
    return out, total, live, names, width
