"""DET004 fixture: wall-clock reads inside simulation code."""

import time
from datetime import datetime
from time import perf_counter


def stamp(event):
    event.at = time.time()  # finding: wall clock into event state
    event.when = datetime.now()  # finding: wall clock into event state
    event.tick = perf_counter()  # finding: from-imported clock read
    return event
