"""PICKLE001 fixture: unpicklable payloads in plan constructors."""

from repro.experiments.runner import ReplicationPlan, SweepPoint


def build_plan(settings, values):
    def run_one(value, point_seed):  # locally defined: cannot pickle
        return value * point_seed

    points = [
        SweepPoint.make(lambda value, point_seed: value, {"value": v})  # finding
        for v in values
    ]
    points.append(SweepPoint.make(run_one, {"value": 0}))  # finding
    points.append(SweepPoint(func=lambda point_seed: point_seed))  # finding
    return ReplicationPlan(settings=settings, points=tuple(points))
