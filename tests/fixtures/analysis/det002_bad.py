"""DET002 fixture: builtin hash() outside the whitelisted functions."""


def derive_seed(kind):
    return 1000 + hash(kind)  # finding: the PR-1 figure 9 bug shape


def bucket(self, name):
    return hash(name) % 8  # finding: hash-derived placement
