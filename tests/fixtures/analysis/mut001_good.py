"""MUT001 fixture: per-instance factories and true class constants."""

from dataclasses import dataclass, field
from typing import ClassVar


@dataclass
class Plan:
    steps: list = field(default_factory=list)
    index: dict = field(default_factory=dict)
    count: int = 0
    KINDS: ClassVar[tuple] = ("a", "b")
    TABLE: ClassVar[dict] = {}  # ClassVar: deliberately class-shared
