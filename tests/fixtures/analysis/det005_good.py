"""DET005 fixture: stable names and sequence numbers key state."""


def schedule(events):
    by_name = {event.name: event for event in events}
    events.sort(key=lambda event: (event.time, event.seq))
    return by_name, events
