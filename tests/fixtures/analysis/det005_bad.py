"""DET005 fixture: identity-keyed and identity-ordered simulation state."""


def schedule(events):
    by_identity = {id(event): event for event in events}  # finding
    events.sort(key=lambda event: id(event))  # finding: identity ordering
    return by_identity, events
