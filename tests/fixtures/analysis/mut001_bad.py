"""MUT001 fixture: shared mutable defaults on dataclass fields.

Never imported (dataclasses would reject the bare literals at class
creation); the analyzer flags them from source alone.
"""

from dataclasses import dataclass, field


@dataclass
class Plan:
    steps: list = []  # finding: literal default shared across instances
    index: dict = dict()  # finding: constructor-call default
    extras: list = field(default=[])  # finding: hidden inside field(default=...)
