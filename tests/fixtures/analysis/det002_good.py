"""DET002 fixture: hash() in its two whitelisted homes."""

import hashlib


class Key:
    def __init__(self, items):
        self._items = tuple(items)

    def __hash__(self):
        return hash(self._items)  # whitelisted: inside __hash__


def _stable_hash(name):
    digest = hashlib.sha256(name.encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big")
