"""Suppression fixture: one of each suppression outcome.

Line numbers matter to the tests; edit with care.
"""


def derive(kind, counts):
    good = hash(kind)  # repro: ignore[DET002] fixture: justified suppression
    bad = hash(kind)  # repro: ignore[DET002]
    alone = 3  # repro: ignore[DET002] nothing to suppress on this line
    broken = 4  # repro: ignore no brackets at all
    return good, bad, alone, broken
