"""DET001 fixture: order-sensitive iteration over unordered views."""


def totals(counts):
    out = []
    for name, value in counts.items():  # finding: for-loop over .items()
        out.append((name, value))
    names = [key for key in counts.keys()]  # finding: list comp over .keys()
    tags = list({"b", "a"})  # finding: list() of a set literal
    for tag in set(names):  # finding: for-loop over set()
        out.append(tag)
    pairs = {k: v for k, v in counts.items()}  # finding: dict comp over .items()
    return out, names, tags, pairs
