"""DET003 fixture: named streams and explicit seeded generators."""

import numpy as np


def draw(rng: np.random.Generator):
    sequence = np.random.SeedSequence(42)  # constructing a seed is fine
    local = np.random.default_rng(sequence)  # seeded generator is fine
    return rng.random() + local.random()
