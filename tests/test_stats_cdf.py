"""Tests of the empirical CDF."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.stats.cdf import EmpiricalCDF


def test_evaluate_at_sample_points():
    cdf = EmpiricalCDF([1.0, 2.0, 3.0, 4.0])
    assert cdf(0.5) == 0.0
    assert cdf(1.0) == 0.25
    assert cdf(2.5) == 0.5
    assert cdf(4.0) == 1.0
    assert cdf(10.0) == 1.0


def test_quantiles_are_inverse_of_evaluate():
    cdf = EmpiricalCDF([10, 20, 30, 40, 50])
    assert cdf.quantile(0.2) == 10
    assert cdf.quantile(0.5) == 30
    assert cdf.quantile(1.0) == 50
    assert cdf.quantile(0.0) == 10
    assert cdf.median() == 30


def test_min_max_mean():
    cdf = EmpiricalCDF([3.0, 1.0, 2.0])
    assert cdf.min == 1.0
    assert cdf.max == 3.0
    assert cdf.mean() == pytest.approx(2.0)
    assert cdf.n == 3


def test_series_is_a_nondecreasing_step_function():
    cdf = EmpiricalCDF([5, 1, 4, 2, 3])
    xs, ps = cdf.series()
    assert list(xs) == sorted(xs)
    assert list(ps) == sorted(ps)
    assert ps[-1] == pytest.approx(1.0)


def test_series_subsampling_limits_points():
    cdf = EmpiricalCDF(range(1000))
    xs, ps = cdf.series(points=10)
    assert len(xs) == len(ps) == 10


def test_table_lists_requested_quantiles():
    cdf = EmpiricalCDF(range(1, 11))
    table = cdf.table([0.1, 0.5, 0.9])
    assert table == [(0.1, 1.0), (0.5, 5.0), (0.9, 9.0)]


def test_ks_distance_of_identical_samples_is_zero():
    a = EmpiricalCDF([1, 2, 3, 4])
    b = EmpiricalCDF([1, 2, 3, 4])
    assert a.ks_distance(b) == 0.0


def test_ks_distance_of_disjoint_samples_is_one():
    a = EmpiricalCDF([1, 2, 3])
    b = EmpiricalCDF([10, 20, 30])
    assert a.ks_distance(b) == pytest.approx(1.0)


def test_ks_distance_is_symmetric():
    a = EmpiricalCDF([1, 2, 3, 7, 9])
    b = EmpiricalCDF([2, 3, 4, 5])
    assert a.ks_distance(b) == pytest.approx(b.ks_distance(a))


def test_empty_sample_rejected():
    with pytest.raises(ValueError):
        EmpiricalCDF([])


def test_invalid_quantile_rejected():
    cdf = EmpiricalCDF([1, 2, 3])
    with pytest.raises(ValueError):
        cdf.quantile(1.5)


@given(st.lists(st.floats(min_value=-1e6, max_value=1e6, allow_nan=False), min_size=1, max_size=80))
def test_cdf_is_monotone_and_bounded(samples):
    cdf = EmpiricalCDF(samples)
    grid = sorted(samples)
    values = [cdf(x) for x in grid]
    assert all(0.0 <= v <= 1.0 for v in values)
    assert all(a <= b + 1e-12 for a, b in zip(values, values[1:], strict=False))
    assert cdf(max(samples)) == pytest.approx(1.0)


@given(
    st.lists(st.floats(min_value=0, max_value=1e3, allow_nan=False), min_size=1, max_size=50),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_quantile_threshold_property(samples, p):
    cdf = EmpiricalCDF(samples)
    x = cdf.quantile(p)
    assert cdf(x) >= p - 1e-12
