"""Tests of the cluster configuration and host clocks."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.clock import HostClock
from repro.cluster.config import ClusterConfig, NetworkParameters, SchedulerParameters


def test_frame_time_scales_with_size_and_bandwidth():
    params = NetworkParameters(bandwidth_mbps=100.0, frame_overhead_bytes=58)
    base = params.frame_time_ms(100)
    assert base == pytest.approx((158 * 8) / (100.0 * 1000.0))
    assert params.frame_time_ms(1000) > base
    slow = NetworkParameters(bandwidth_mbps=10.0, frame_overhead_bytes=58)
    assert slow.frame_time_ms(100) == pytest.approx(10 * base)


def test_cluster_config_validation():
    with pytest.raises(ValueError):
        ClusterConfig(n_processes=0)
    with pytest.raises(ValueError):
        ClusterConfig(message_size_bytes=0)


def test_cluster_config_with_processes_and_seed_are_copies():
    config = ClusterConfig(n_processes=3, seed=1)
    other = config.with_processes(7).with_seed(9)
    assert other.n_processes == 7 and other.seed == 9
    assert config.n_processes == 3 and config.seed == 1


def test_cluster_config_replace_and_as_dict():
    config = ClusterConfig(n_processes=3)
    replaced = config.replace(message_size_bytes=200)
    assert replaced.message_size_bytes == 200
    info = config.as_dict()
    assert info["n_processes"] == 3
    assert "cpu_send_ms" in info


def test_clock_offset_and_resolution():
    clock = HostClock(offset_ms=0.03, drift_ppm=0.0, resolution_ms=0.001)
    assert clock.local_time(1.0) == pytest.approx(1.03, abs=1e-9)
    # Readings are quantised to the resolution.
    assert clock.local_time(1.00005) == pytest.approx(1.030, abs=1e-9)


def test_clock_drift_accumulates_with_time():
    clock = HostClock(offset_ms=0.0, drift_ppm=100.0, resolution_ms=0.001)
    assert clock.local_time(10_000.0) == pytest.approx(10_001.0, abs=0.01)


def test_clock_global_time_inverts_local_time():
    clock = HostClock(offset_ms=0.02, drift_ppm=50.0, resolution_ms=0.001)
    local = 123.456
    assert clock.local_time(clock.global_time(local)) == pytest.approx(local, abs=0.001)


def test_synchronized_clock_stays_within_the_ntp_precision():
    rng = np.random.default_rng(0)
    for _ in range(50):
        clock = HostClock.synchronized(rng, precision_ms=0.05, drift_ppm=20.0, resolution_ms=0.001)
        assert abs(clock.offset_ms) <= 0.05
        assert abs(clock.drift_ppm) <= 20.0


def test_clock_rejects_nonpositive_resolution():
    with pytest.raises(ValueError):
        HostClock(resolution_ms=0.0)


def test_scheduler_parameters_defaults_match_linux_2_2():
    scheduler = SchedulerParameters()
    assert scheduler.quantum_ms == 10.0
