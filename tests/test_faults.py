"""Tests of the fault-injection subsystem (repro.faults)."""

from __future__ import annotations

import math

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig
from repro.cluster.message import BROADCAST, Message
from repro.cluster.neko import ProtocolLayer
from repro.faults import (
    CpuLoadBurst,
    CrashRecovery,
    DelaySpike,
    FaultLoad,
    MessageDuplication,
    MessageLoss,
    NetworkPartition,
)
from repro.sanmodels.parameters import SANParameters


class _ProbeLayer(ProtocolLayer):
    """Minimal application layer: sends probes, absorbs deliveries."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.received = []

    def probe(self, destination, msg_type="probe"):
        self.send_down(
            Message(sender=self.process_id, destination=destination, msg_type=msg_type)
        )

    def on_deliver(self, message):
        self.received.append(message)


def _probe_cluster(n=3, seed=5, fault_load=None):
    cluster = Cluster(ClusterConfig(n_processes=n, seed=seed), fault_load=fault_load)
    cluster.create_processes(lambda sim, pid: [_ProbeLayer(sim, f"probe.p{pid}")])
    cluster.start_all()
    return cluster


def _send_probes(cluster, count, destination=1, gap_ms=1.0, start_ms=0.5):
    sender = cluster.process(0).layer(_ProbeLayer)
    time = start_ms
    for _ in range(count):
        cluster.sim.schedule_at(time, sender.probe, destination)
        time += gap_ms
    return time


# ----------------------------------------------------------------------
# Message loss
# ----------------------------------------------------------------------
def test_message_loss_drops_copies_with_wire_cause():
    load = FaultLoad.of(MessageLoss(rate=0.3))
    cluster = _probe_cluster(fault_load=load)
    end = _send_probes(cluster, 200)
    cluster.run(until=end + 10.0)
    transport = cluster.transport
    assert transport.drops_by_cause.get("wire:loss", 0) > 0
    assert transport.messages_dropped == transport.drops_by_cause["wire:loss"]
    assert transport.messages_delivered == (
        transport.messages_sent - transport.messages_dropped
    )
    assert cluster.fault_injector.stats.messages_lost == transport.messages_dropped


def test_fault_injection_is_deterministic_under_fixed_seed():
    def run():
        load = FaultLoad.of(
            MessageLoss(rate=0.2),
            MessageDuplication(rate=0.1),
            DelaySpike(rate=0.1, extra_low_ms=0.5, extra_high_ms=2.0),
        )
        cluster = _probe_cluster(seed=11, fault_load=load)
        end = _send_probes(cluster, 150)
        cluster.run(until=end + 20.0)
        # msg_ids come from a process-global counter; normalise to the first
        # id so two runs are comparable.
        base = min(r.msg_id for r in cluster.trace.records)
        trace = [(r.msg_id - base, r.delivered_at) for r in cluster.trace.records]
        return (
            dict(cluster.transport.drops_by_cause),
            cluster.transport.messages_duplicated,
            cluster.fault_injector.stats.as_dict(),
            trace,
        )

    assert run() == run()


def test_loss_can_be_restricted_to_message_types():
    load = FaultLoad.of(MessageLoss(rate=1.0, msg_types=("doomed",)))
    cluster = _probe_cluster(fault_load=load)
    sender = cluster.process(0).layer(_ProbeLayer)
    cluster.sim.schedule_at(0.5, sender.probe, 1, "doomed")
    cluster.sim.schedule_at(1.5, sender.probe, 1, "fine")
    cluster.run(until=20.0)
    assert cluster.transport.drops_by_cause.get("wire:loss") == 1
    delivered_types = [r.msg_type for r in cluster.trace.records]
    assert delivered_types == ["fine"]


# ----------------------------------------------------------------------
# Duplication
# ----------------------------------------------------------------------
def test_duplication_delivers_extra_copies():
    load = FaultLoad.of(MessageDuplication(rate=1.0, copies=1))
    cluster = _probe_cluster(fault_load=load)
    end = _send_probes(cluster, 10)
    cluster.run(until=end + 10.0)
    transport = cluster.transport
    assert transport.messages_duplicated == 10
    assert transport.messages_delivered == 20
    duplicates = [r for r in cluster.trace.records if r.injected_duplicate]
    assert len(duplicates) == 10
    # The receiving layer sees every copy (at-least-once delivery).
    receiver = cluster.process(1).layer(_ProbeLayer)
    assert len(receiver.received) == 20


# ----------------------------------------------------------------------
# Partitions
# ----------------------------------------------------------------------
def test_partition_blocks_cross_group_traffic_and_heals():
    load = FaultLoad.of(
        NetworkPartition(groups=((0,), (1, 2)), start_ms=10.0, end_ms=20.0)
    )
    cluster = _probe_cluster(fault_load=load)
    end = _send_probes(cluster, 30, gap_ms=1.0, start_ms=0.5)  # spans 0.5..30.5
    cluster.run(until=end + 10.0)
    transport = cluster.transport
    partition_drops = transport.drops_by_cause.get("wire:partition", 0)
    assert partition_drops > 0
    assert cluster.fault_injector.stats.partition_drops == partition_drops
    # Probes before and after the window got through.
    delivered_at = [r.submitted_at for r in cluster.trace.records]
    assert any(t < 10.0 for t in delivered_at)
    assert any(t > 20.0 for t in delivered_at)
    assert not any(10.0 < t < 19.0 for t in delivered_at)


def test_partition_allows_same_group_traffic():
    load = FaultLoad.of(NetworkPartition(groups=((0, 1), (2,)), start_ms=0.0))
    cluster = _probe_cluster(fault_load=load)
    end = _send_probes(cluster, 5, destination=1)
    cluster.run(until=end + 10.0)
    assert cluster.transport.messages_delivered == 5
    assert cluster.transport.drops_by_cause.get("wire:partition") is None


# ----------------------------------------------------------------------
# Crash-recovery
# ----------------------------------------------------------------------
def test_crash_recovery_redelivers_after_recovery():
    load = FaultLoad.of(
        CrashRecovery(process_id=1, crash_at_ms=5.0, recover_at_ms=15.0)
    )
    cluster = _probe_cluster(fault_load=load)
    end = _send_probes(cluster, 25, destination=1, gap_ms=1.0, start_ms=0.5)
    cluster.run(until=end + 10.0)
    transport = cluster.transport
    assert transport.drops_by_cause.get("receive:receiver-crashed", 0) > 0
    stats = cluster.fault_injector.stats
    assert stats.crashes == 1 and stats.recoveries == 1
    assert not cluster.hosts[1].crashed
    # Probes submitted after the recovery are delivered again.
    late = [r for r in cluster.trace.records if r.submitted_at > 15.5]
    assert late, "no probe delivered after recovery"


def test_crashed_broadcast_counts_one_drop_per_copy():
    # Regression: a crashed sender's broadcast used to count a single drop
    # while the rest of the pipeline counts per unicast copy.
    cluster = _probe_cluster(n=5)
    cluster.crash_process(0)
    sender = cluster.process(0).layer(_ProbeLayer)
    message = Message(sender=0, destination=BROADCAST, msg_type="probe")
    cluster.transport.send(message)
    assert cluster.transport.messages_dropped == 4
    assert cluster.transport.drops_by_cause == {"send:sender-crashed": 4}
    assert sender.received == []


# ----------------------------------------------------------------------
# Delay spikes and CPU bursts
# ----------------------------------------------------------------------
def test_stack_delay_spikes_reorder_messages():
    load = FaultLoad.of(DelaySpike(rate=0.3, extra_low_ms=2.0, extra_high_ms=8.0))
    cluster = _probe_cluster(fault_load=load)
    end = _send_probes(cluster, 100, gap_ms=0.5)
    cluster.run(until=end + 30.0)
    assert cluster.fault_injector.stats.delay_spikes > 0
    order = [r.msg_id for r in cluster.trace.records]
    assert order != sorted(order), "delay spikes should reorder deliveries"


def test_medium_delay_spikes_slow_the_wire():
    slow = FaultLoad.of(
        DelaySpike(rate=1.0, extra_low_ms=1.0, extra_high_ms=1.0, where="medium")
    )
    fast = _probe_cluster(seed=3)
    end = _send_probes(fast, 20)
    fast.run(until=end + 20.0)
    slowed = _probe_cluster(seed=3, fault_load=slow)
    end = _send_probes(slowed, 20)
    slowed.run(until=end + 40.0)
    mean_fast = sum(r.end_to_end_delay for r in fast.trace.records) / 20
    mean_slow = sum(r.end_to_end_delay for r in slowed.trace.records) / 20
    assert mean_slow > mean_fast + 0.9


def test_cpu_load_burst_slows_messages_during_the_window():
    load = FaultLoad.of(CpuLoadBurst(start_ms=10.0, end_ms=20.0, slowdown=10.0))
    cluster = _probe_cluster(fault_load=load)
    end = _send_probes(cluster, 30, gap_ms=1.0, start_ms=0.5)
    cluster.run(until=end + 20.0)
    records = cluster.trace.records
    in_burst = [r.end_to_end_delay for r in records if 10.0 <= r.submitted_at < 19.0]
    outside = [r.end_to_end_delay for r in records if r.submitted_at < 9.0]
    assert in_burst and outside
    assert sum(in_burst) / len(in_burst) > sum(outside) / len(outside)


# ----------------------------------------------------------------------
# Spec validation and SAN mapping
# ----------------------------------------------------------------------
def test_fault_spec_validation():
    with pytest.raises(ValueError):
        MessageLoss(rate=1.5)
    with pytest.raises(ValueError):
        MessageDuplication(rate=0.1, copies=0)
    with pytest.raises(ValueError):
        DelaySpike(rate=0.1, extra_low_ms=2.0, extra_high_ms=1.0)
    with pytest.raises(ValueError):
        NetworkPartition(groups=((0, 1), (1, 2)))
    with pytest.raises(ValueError):
        CrashRecovery(process_id=0, crash_at_ms=5.0, recover_at_ms=5.0)
    with pytest.raises(ValueError):
        CpuLoadBurst(start_ms=1.0, end_ms=1.0)


def test_fault_load_total_loss_rate_composes_independently():
    load = FaultLoad.of(MessageLoss(rate=0.1), MessageLoss(rate=0.2))
    assert load.total_loss_rate() == pytest.approx(1 - 0.9 * 0.8)
    typed = FaultLoad.of(MessageLoss(rate=0.5, msg_types=("x",)))
    assert typed.total_loss_rate() == 0.0


def test_fault_load_static_partition_groups():
    static = FaultLoad.of(NetworkPartition(groups=((0,), (1, 2))))
    assert static.static_partition_groups() == ((0,), (1, 2))
    windowed = FaultLoad.of(
        NetworkPartition(groups=((0,), (1, 2)), start_ms=1.0, end_ms=2.0)
    )
    assert windowed.static_partition_groups() == ()


def test_san_parameters_connected_and_with_faults():
    params = SANParameters().with_faults(loss_rate=0.1, partition=((0,), (1, 2)))
    assert params.loss_rate == 0.1
    assert not params.connected(0, 1)
    assert params.connected(1, 2)
    assert params.connected(3, 4)  # unlisted hosts share the implicit group
    assert SANParameters().connected(0, 1)
    with pytest.raises(ValueError):
        SANParameters(loss_rate=1.0)


def test_san_model_with_loss_still_solves():
    from repro.sanmodels.consensus_model import ConsensusSANExperiment

    lossless = ConsensusSANExperiment(n_processes=3, seed=13).run(replications=20)
    lossy = ConsensusSANExperiment(
        n_processes=3,
        seed=13,
        parameters=SANParameters().with_faults(loss_rate=0.2),
    ).run(replications=20)
    assert lossless.undecided == 0
    assert math.isfinite(lossy.mean_ms) or lossy.undecided == 20
    # Losing messages can only delay or prevent decisions.
    if math.isfinite(lossy.mean_ms):
        assert lossy.mean_ms >= lossless.mean_ms


def test_san_model_with_partitioned_coordinator_cannot_decide():
    from repro.sanmodels.consensus_model import ConsensusSANExperiment

    partitioned = ConsensusSANExperiment(
        n_processes=3,
        seed=13,
        parameters=SANParameters().with_faults(partition=((0,), (1, 2))),
        max_time_ms=50.0,
    ).run(replications=5)
    assert partitioned.undecided == 5


def test_crash_recovery_out_of_range_fails_at_construction():
    load = FaultLoad.of(CrashRecovery(process_id=5, crash_at_ms=1.0))
    with pytest.raises(ValueError, match="only 3 processes"):
        _probe_cluster(n=3, fault_load=load)


def test_quick_crash_recovery_does_not_double_heartbeat_loop():
    # Regression: a heartbeat emission sleeping in the OS scheduler at crash
    # time used to resume after a fast recovery *alongside* the fresh loop
    # armed by recover(), doubling the emission rate.
    from repro.failure_detectors.heartbeat import HeartbeatFailureDetector

    def heartbeats(fault_load):
        cluster = _probe_cluster(seed=9, fault_load=fault_load)
        for process in cluster.processes:
            fd = HeartbeatFailureDetector(
                cluster.sim, timeout_ms=10.0, name=f"hb.p{process.process_id}"
            )
            process.layers.append(fd)
            process._wire_layers()
            fd.start()
        cluster.run(until=400.0)
        return cluster.process(2).layer(HeartbeatFailureDetector).heartbeats_sent

    baseline = heartbeats(None)
    quick = heartbeats(
        FaultLoad.of(CrashRecovery(process_id=2, crash_at_ms=100.0, recover_at_ms=100.5))
    )
    assert quick <= baseline * 1.15
