"""Golden-trace regression tests: lock the executor's exact semantics.

A deterministic single-replication trajectory -- every activity
completion with its timestamp and the marking it produced -- is snapshot
against literals.  Any change to the executor's event ordering, RNG
stream derivation, instantaneous tie-breaking or completion rules shows
up here as an exact mismatch, which is the point: the analytic-solver
refactor (and future ones) must not silently shift simulative results.

The trace model exercises every semantic ingredient: an instantaneous
activity with probabilistic cases, exponential / uniform / constant
timed activities, chained firings at one instant and a shared token pool.
"""

from __future__ import annotations

import os
import subprocess
import sys

import pytest

from repro.des.simulator import Simulator
from repro.san import (
    Case,
    InstantaneousActivity,
    Place,
    RewardVariable,
    SANExecutor,
    SANModel,
    TimedActivity,
)
from repro.sanmodels import ConsensusSANExperiment
from repro.stats.distributions import Constant, Exponential, Uniform

GOLDEN_SEED = 20020623
GOLDEN_HORIZON = 6.0

#: The exact trajectory of the golden model under ``GOLDEN_SEED``:
#: (activity, completion time, nonzero marking after the completion).
GOLDEN_TRACE = [
    ("stage", 0.0, {"fast": 1, "pool": 2}),
    ("stage", 0.0, {"fast": 2, "pool": 1}),
    ("stage", 0.0, {"fast": 3}),
    ("finish_fast", 0.20505617117314784, {"done": 1, "fast": 2}),
    ("finish_fast", 0.8858137979904217, {"done": 2, "fast": 1}),
    ("audit", 0.9550561711731478, {"done": 1, "fast": 1, "pool": 1}),
    ("stage", 0.9550561711731478, {"done": 1, "fast": 2}),
    ("audit", 1.7050561711731478, {"fast": 2, "pool": 1}),
    ("stage", 1.7050561711731478, {"fast": 2, "slow": 1}),
    ("finish_fast", 3.265066813556073, {"done": 1, "fast": 1, "slow": 1}),
    ("finish_slow", 3.3036904787247083, {"done": 2, "fast": 1}),
    ("audit", 4.015066813556073, {"done": 1, "fast": 1, "pool": 1}),
    ("stage", 4.015066813556073, {"done": 1, "fast": 1, "slow": 1}),
    ("finish_fast", 4.040466983207616, {"done": 2, "slow": 1}),
    ("audit", 4.765066813556073, {"done": 1, "pool": 1, "slow": 1}),
    ("stage", 4.765066813556073, {"done": 1, "fast": 1, "slow": 1}),
    ("finish_slow", 5.461623110616261, {"done": 2, "fast": 1}),
    ("audit", 5.515066813556073, {"done": 1, "fast": 1, "pool": 1}),
    ("stage", 5.515066813556073, {"done": 1, "fast": 1, "slow": 1}),
    ("finish_fast", 5.702150289867818, {"done": 2, "slow": 1}),
]

#: Exact rewards of replication 0 of the n = 3 consensus experiment.
GOLDEN_CONSENSUS_LATENCY = 0.6297584631047661
GOLDEN_CONSENSUS_COMPLETIONS = 40.0

#: The exact *calendar-level* event order of the golden run: every event the
#: simulator fires, as (time, priority, seq, callback name, activity name).
#: This pins behaviour one layer below GOLDEN_TRACE: the heap ordering, the
#: sequence-number assignment (i.e. the order in which the executor walks
#: activities when scheduling) and the lazy-cancellation discipline.  A
#: calendar refactor that kept reward values but reordered same-time events
#: or renumbered schedules shows up here.
GOLDEN_EVENT_ORDER = [
    (0.20505617117314784, 0, 0, "_complete_timed", "finish_fast"),
    (0.8858137979904217, 0, 2, "_complete_timed", "finish_fast"),
    (0.9550561711731478, 0, 1, "_complete_timed", "audit"),
    (1.7050561711731478, 0, 4, "_complete_timed", "audit"),
    (3.265066813556073, 0, 3, "_complete_timed", "finish_fast"),
    (3.3036904787247083, 0, 5, "_complete_timed", "finish_slow"),
    (4.015066813556073, 0, 6, "_complete_timed", "audit"),
    (4.040466983207616, 0, 7, "_complete_timed", "finish_fast"),
    (4.765066813556073, 0, 8, "_complete_timed", "audit"),
    (5.461623110616261, 0, 9, "_complete_timed", "finish_slow"),
    (5.515066813556073, 0, 10, "_complete_timed", "audit"),
    (5.702150289867818, 0, 11, "_complete_timed", "finish_fast"),
]


def build_golden_model() -> SANModel:
    model = SANModel("golden")
    model.add_place(Place("pool", 3))
    model.add_place(Place("staged", 0))
    model.add_place(Place("fast", 0))
    model.add_place(Place("slow", 0))
    model.add_place(Place("done", 0))
    model.add_activity(
        InstantaneousActivity(
            "stage",
            input_arcs=["pool"],
            cases=[
                Case.build(probability=0.6, output_arcs=["fast"], label="fast"),
                Case.build(probability=0.4, output_arcs=["slow"], label="slow"),
            ],
            rank=0,
        )
    )
    model.add_activity(
        TimedActivity(
            "finish_fast",
            Exponential(0.5),
            input_arcs=["fast"],
            cases=[Case.build(output_arcs=["done"])],
        )
    )
    model.add_activity(
        TimedActivity(
            "finish_slow",
            Uniform(1.0, 2.0),
            input_arcs=["slow"],
            cases=[Case.build(output_arcs=["done"])],
        )
    )
    model.add_activity(
        TimedActivity(
            "audit",
            Constant(0.75),
            input_arcs=["done"],
            cases=[Case.build(output_arcs=["pool"])],
        )
    )
    return model


class TraceRecorder(RewardVariable):
    """Records every completion as (activity, time, nonzero marking)."""

    name = "trace"

    def __init__(self) -> None:
        self.events: list[tuple[str, float, dict[str, int]]] = []

    def on_activity_completion(self, activity_name, marking, time) -> None:
        snapshot = dict(sorted(marking.as_dict(drop_zeros=True).items()))
        self.events.append((activity_name, time, snapshot))

    def value(self) -> float:
        return float(len(self.events))


def run_golden_trace(
    executor_class: type = SANExecutor,
) -> tuple[TraceRecorder, object]:
    sim = Simulator(seed=GOLDEN_SEED)
    recorder = TraceRecorder()
    executor = executor_class(build_golden_model(), sim, rewards=[recorder])
    outcome = executor.run(until=GOLDEN_HORIZON)
    return recorder, outcome


def test_golden_trace_is_reproduced_exactly():
    recorder, outcome = run_golden_trace()
    assert outcome.completions == len(GOLDEN_TRACE)
    assert not outcome.dead_marking
    assert [event[0] for event in recorder.events] == [e[0] for e in GOLDEN_TRACE]
    for recorded, golden in zip(recorder.events, GOLDEN_TRACE, strict=True):
        activity, time, marking = recorded
        golden_activity, golden_time, golden_marking = golden
        assert activity == golden_activity
        # Exact float equality: same seed, same streams, same arithmetic.
        assert time == golden_time, (activity, time, golden_time)
        assert marking == golden_marking, (activity, marking)


def test_golden_trace_is_independent_of_a_second_executor_in_scope():
    # Building (and running) another executor first must not perturb the
    # golden run: streams are derived from the simulator seed, not shared
    # global state.
    noise_sim = Simulator(seed=999)
    noise = SANExecutor(build_golden_model(), noise_sim, rewards=[])
    noise.run(until=3.0)
    recorder, _outcome = run_golden_trace()
    assert recorder.events[3][1] == GOLDEN_TRACE[3][1]


def test_golden_event_order_is_reproduced_exactly():
    # One layer below the completion trace: the DES calendar itself.
    sim = Simulator(seed=GOLDEN_SEED)
    fired: list[tuple[float, int, int, str, str]] = []

    def hook(event):
        activity = (
            event.args[0].name
            if event.args and hasattr(event.args[0], "name")
            else ""
        )
        fired.append(
            (
                event.time,
                event.priority,
                event.seq,
                getattr(event.callback, "__name__", "?"),
                activity,
            )
        )

    sim.add_trace_hook(hook)
    executor = SANExecutor(build_golden_model(), sim, rewards=[TraceRecorder()])
    executor.run(until=GOLDEN_HORIZON)
    assert fired == GOLDEN_EVENT_ORDER


def test_reference_executor_reproduces_golden_trace():
    # The unoptimized full-re-evaluation executor must walk the exact same
    # trajectory: the dependency index, batched draws and cached model
    # structures are pure optimizations, not semantic changes.
    from repro.san.reference import ReferenceExecutor

    recorder, outcome = run_golden_trace(ReferenceExecutor)
    assert outcome.completions == len(GOLDEN_TRACE)
    assert recorder.events == [
        (activity, time, dict(sorted(marking.items())))
        for activity, time, marking in GOLDEN_TRACE
    ]


def test_consensus_replication_zero_snapshot():
    solver = ConsensusSANExperiment(n_processes=3, seed=1).solver()
    replication = solver.run_replication(0)
    assert replication.stopped_by_predicate
    assert replication.rewards["latency"] == GOLDEN_CONSENSUS_LATENCY
    assert replication.rewards["completions"] == GOLDEN_CONSENSUS_COMPLETIONS


@pytest.mark.parametrize("hash_seed", ["1", "31337"])
def test_trace_is_independent_of_pythonhashseed(hash_seed):
    # The executor used to draw durations in PYTHONHASHSEED-dependent set
    # order from shared streams, making results differ between processes.
    # Per-activity streams fixed that; this guards the fix by re-running
    # the golden replication under explicit hash seeds.
    script = (
        "from tests.test_san_golden_trace import run_golden_trace;"
        "recorder, outcome = run_golden_trace();"
        "print(repr([event[1] for event in recorder.events]))"
    )
    environment = dict(os.environ)
    environment["PYTHONHASHSEED"] = hash_seed
    environment["PYTHONPATH"] = os.pathsep.join(
        filter(None, ["src", os.path.dirname(os.path.dirname(__file__)),
                      environment.get("PYTHONPATH", "")])
    )
    completed = subprocess.run(
        [sys.executable, "-c", script],
        capture_output=True,
        text=True,
        cwd=os.path.dirname(os.path.dirname(os.path.abspath(__file__))),
        env=environment,
        check=True,
    )
    times = eval(completed.stdout.strip())  # our own repr output
    assert times == [event[1] for event in GOLDEN_TRACE]
