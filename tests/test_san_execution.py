"""Tests of the process execution policy (:mod:`repro.san.execution`).

The policy is the bridge between call sites that do not want to thread
executor knobs through every signature (CLI, experiment specs) and
:meth:`SimulativeSolver.solve`: explicit arguments beat the activated
policy (transported via environment variables so pooled workers inherit
it), which beats the defaults -- and none of it ever changes results.
"""

from __future__ import annotations

import pytest

from repro.san import execution
from repro.sanmodels import ConsensusSANExperiment


@pytest.fixture(autouse=True)
def _clean_policy_env(monkeypatch):
    monkeypatch.delenv(execution.STRATEGY_ENV, raising=False)
    monkeypatch.delenv(execution.BATCH_SIZE_ENV, raising=False)


# ----------------------------------------------------------------------
# Parsing and validation
# ----------------------------------------------------------------------
def test_parse_strategy_accepts_known_and_rejects_unknown():
    assert execution.parse_strategy("scalar") == "scalar"
    assert execution.parse_strategy("batched") == "batched"
    with pytest.raises(ValueError, match="unknown strategy 'warp'"):
        execution.parse_strategy("warp")
    with pytest.raises(ValueError, match="--strategy"):
        execution.parse_strategy("warp", source="--strategy")


def test_parse_batch_size_accepts_ints_strings_and_auto():
    assert execution.parse_batch_size(7) == 7
    assert execution.parse_batch_size("7") == 7
    assert execution.parse_batch_size("auto") == "auto"
    assert execution.parse_batch_size(" AUTO ") == "auto"
    for bad in (0, -3, "0", "nope", 2.5, True):
        with pytest.raises(ValueError):
            execution.parse_batch_size(bad)


def test_policy_validates_and_normalises_on_construction():
    policy = execution.ExecutionPolicy(strategy="batched", batch_size="16")
    assert policy.batch_size == 16
    with pytest.raises(ValueError):
        execution.ExecutionPolicy(strategy="warp")
    with pytest.raises(ValueError):
        execution.ExecutionPolicy(batch_size="-1")


# ----------------------------------------------------------------------
# Activation and resolution order
# ----------------------------------------------------------------------
def test_defaults_without_policy():
    assert execution.active_policy() == execution.ExecutionPolicy()
    assert execution.resolve_strategy() == "scalar"
    assert execution.resolve_batch_size() == "auto"


def test_activate_round_trips_through_the_environment():
    execution.activate(
        execution.ExecutionPolicy(strategy="batched", batch_size=64)
    )
    assert execution.active_policy() == execution.ExecutionPolicy(
        strategy="batched", batch_size=64
    )
    assert execution.resolve_strategy() == "batched"
    assert execution.resolve_batch_size() == 64
    # Clearing: an empty policy restores the defaults.
    execution.activate(execution.ExecutionPolicy())
    assert execution.active_policy() == execution.ExecutionPolicy()


def test_explicit_arguments_beat_the_activated_policy():
    execution.activate(
        execution.ExecutionPolicy(strategy="batched", batch_size="auto")
    )
    assert execution.resolve_strategy("scalar") == "scalar"
    assert execution.resolve_batch_size(9) == 9


def test_environment_values_are_validated_with_their_variable_name(monkeypatch):
    monkeypatch.setenv(execution.STRATEGY_ENV, "warp")
    with pytest.raises(ValueError, match=execution.STRATEGY_ENV):
        execution.resolve_strategy()
    monkeypatch.setenv(execution.STRATEGY_ENV, "batched")
    monkeypatch.setenv(execution.BATCH_SIZE_ENV, "zero")
    with pytest.raises(ValueError, match=execution.BATCH_SIZE_ENV):
        execution.resolve_batch_size()


# ----------------------------------------------------------------------
# End to end: the policy drives the solver without changing results
# ----------------------------------------------------------------------
def test_policy_driven_solve_is_bit_identical_to_scalar(monkeypatch):
    experiment = ConsensusSANExperiment(n_processes=3, seed=11)
    scalar = experiment.solver().solve(replications=12)
    monkeypatch.setenv(execution.STRATEGY_ENV, "batched")
    monkeypatch.setenv(execution.BATCH_SIZE_ENV, "5")
    policy_driven = experiment.solver().solve(replications=12)
    assert [r.rewards for r in policy_driven.replications] == [
        r.rewards for r in scalar.replications
    ]


def test_experiment_options_overlay_the_policy(monkeypatch):
    from repro.experiments.registry import ExperimentOptions

    monkeypatch.setenv(execution.BATCH_SIZE_ENV, "32")
    options = ExperimentOptions(strategy="batched")
    options.context()
    # The set field landed; the unset field kept the environment's value.
    assert execution.active_policy() == execution.ExecutionPolicy(
        strategy="batched", batch_size=32
    )
    with pytest.raises(ValueError, match="--strategy"):
        ExperimentOptions(strategy="warp").validate()
    with pytest.raises(ValueError, match="--batch-size"):
        ExperimentOptions(batch_size="none").validate()
