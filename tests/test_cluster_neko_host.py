"""Tests of the Neko-like protocol stack and host OS scheduling effects."""

from __future__ import annotations

import numpy as np
import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig, SchedulerParameters
from repro.cluster.host import OSScheduler
from repro.cluster.message import Message
from repro.cluster.neko import ProtocolLayer


class _Recorder(ProtocolLayer):
    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.delivered = []
        self.sent = []
        self.started = False

    def start(self):
        self.started = True

    def on_deliver(self, message):
        self.delivered.append(message)
        self.deliver_up(message)

    def on_send(self, message):
        self.sent.append(message)
        self.send_down(message)


class _Tagger(ProtocolLayer):
    """A middle layer that tags payloads in both directions."""

    def on_send(self, message):
        message.payload["tagged_down"] = True
        self.send_down(message)

    def on_deliver(self, message):
        message.payload["tagged_up"] = True
        self.deliver_up(message)


def _build(config):
    cluster = Cluster(config)
    cluster.create_processes(
        lambda sim, pid: [_Recorder(sim, f"app{pid}"), _Tagger(sim, f"mid{pid}")]
    )
    cluster.start_all()
    return cluster


def test_layers_are_wired_and_started(cluster_config):
    cluster = _build(cluster_config)
    process = cluster.process(0)
    assert process.top_layer.name == "app0"
    assert process.bottom_layer.name == "mid0"
    assert process.layer(_Recorder).started
    assert process.layer(_Tagger).process is process


def test_messages_travel_down_and_up_through_every_layer(cluster_config):
    cluster = _build(cluster_config)
    app0 = cluster.process(0).layer(_Recorder)
    message = Message(sender=0, destination=1, msg_type="hello")
    app0.send_down(message)
    cluster.run(until=10.0)
    delivered = cluster.process(1).layer(_Recorder).delivered
    assert len(delivered) == 1
    assert delivered[0].payload.get("tagged_up") is True
    assert message.payload.get("tagged_down") is True


def test_crashed_process_does_not_start_or_receive(cluster_config):
    cluster = Cluster(cluster_config)
    cluster.create_processes(lambda sim, pid: [_Recorder(sim, f"app{pid}")])
    cluster.crash_process(1)
    cluster.start_all()
    assert not cluster.process(1).layer(_Recorder).started
    cluster.process(0).layer(_Recorder).send_down(
        Message(sender=0, destination=1, msg_type="hello")
    )
    cluster.run(until=10.0)
    assert cluster.process(1).layer(_Recorder).delivered == []
    assert cluster.correct_processes() == [0, 2]


def test_crashed_process_sends_nothing(cluster_config):
    cluster = Cluster(cluster_config)
    cluster.create_processes(lambda sim, pid: [_Recorder(sim, f"app{pid}")])
    cluster.start_all()
    cluster.crash_process(0)
    cluster.process(0).layer(_Recorder).send_down(
        Message(sender=0, destination=1, msg_type="hello")
    )
    cluster.run(until=10.0)
    assert cluster.process(1).layer(_Recorder).delivered == []


def test_layer_lookup_by_type_raises_for_missing_layer(cluster_config):
    cluster = _build(cluster_config)
    with pytest.raises(KeyError):
        cluster.process(0).layer(ClusterConfig)  # not a layer type in the stack


def test_process_requires_at_least_one_layer(cluster_config):
    cluster = Cluster(cluster_config)
    with pytest.raises(ValueError):
        cluster.create_processes(lambda sim, pid: [])


def test_creating_processes_twice_is_rejected(cluster_config):
    cluster = Cluster(cluster_config)
    cluster.create_processes(lambda sim, pid: [_Recorder(sim, f"a{pid}")])
    with pytest.raises(RuntimeError):
        cluster.create_processes(lambda sim, pid: [_Recorder(sim, f"b{pid}")])


def test_host_local_time_differs_from_global_time(cluster_config):
    cluster = _build(cluster_config)
    cluster.run(until=5.0)
    offsets = {host.clock.offset_ms for host in cluster.hosts}
    assert len(offsets) > 1  # NTP sync error differs per host
    for host in cluster.hosts:
        assert abs(host.local_time() - 5.0) < 0.2


def test_os_scheduler_sleep_never_shorter_than_requested():
    scheduler = OSScheduler(SchedulerParameters(), np.random.default_rng(1))
    for requested in (0.7, 3.0, 21.0):
        for _ in range(200):
            assert scheduler.effective_sleep(requested) >= requested


def test_os_scheduler_granularity_rounds_up():
    params = SchedulerParameters(
        timer_granularity_ms=10.0, wakeup_jitter_ms=1e-9, preemption_probability=0.0
    )
    scheduler = OSScheduler(params, np.random.default_rng(1))
    assert scheduler.effective_sleep(0.7) >= 10.0
    assert scheduler.effective_sleep(21.0) >= 30.0


def test_os_scheduler_preemption_adds_occasional_large_delays():
    params = SchedulerParameters(
        timer_granularity_ms=1.0,
        wakeup_jitter_ms=1e-6,
        preemption_probability=1.0,
        preemption_max_fraction=1.0,
        quantum_ms=10.0,
    )
    scheduler = OSScheduler(params, np.random.default_rng(2))
    delays = [scheduler.effective_sleep(1.0) - 1.0 for _ in range(300)]
    assert max(delays) > 5.0


def test_host_sleep_uses_scheduler_effects(quiet_scheduler_config):
    cluster = _build(quiet_scheduler_config)
    host = cluster.hosts[0]
    fired = []
    host.sleep(2.0, lambda: fired.append(cluster.sim.now))
    cluster.run(until=10.0)
    assert len(fired) == 1
    assert fired[0] == pytest.approx(2.0, abs=0.01)
