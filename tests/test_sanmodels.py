"""Tests of the SAN models of the paper (network paths, FD model, consensus)."""

from __future__ import annotations

import math

import pytest

from repro.des.simulator import Simulator
from repro.san.executor import SANExecutor
from repro.san.marking import Marking
from repro.san.model import SANModel
from repro.san.places import Place
from repro.sanmodels.consensus_model import (
    ConsensusSANExperiment,
    build_consensus_model,
    consensus_stop_predicate,
    latency_reward,
)
from repro.sanmodels.fd_model import FDModelSettings, add_failure_detector_pair
from repro.sanmodels.network_model import add_broadcast_path, add_unicast_path
from repro.sanmodels.parameters import BimodalFit, SANParameters
from repro.stats.distributions import Constant


# ----------------------------------------------------------------------
# Parameters
# ----------------------------------------------------------------------
def test_default_parameters_reproduce_the_papers_fit():
    params = SANParameters()
    dist = params.unicast_fit.distribution()
    assert dist.mean() == pytest.approx(0.8 * 0.115 + 0.2 * 0.2475)
    assert params.t_send_ms == 0.025


def test_t_net_is_end_to_end_minus_two_t_send():
    params = SANParameters(t_send_ms=0.025, t_receive_ms=0.025)
    t_net = params.t_net_unicast_distribution()
    assert t_net.mean() == pytest.approx(params.unicast_fit.distribution().mean() - 0.05, rel=1e-6)


def test_with_t_send_keeps_the_end_to_end_delay_fixed():
    params = SANParameters()
    changed = params.with_t_send(0.01)
    assert changed.t_send_ms == changed.t_receive_ms == 0.01
    total_before = params.t_net_unicast_distribution().mean() + 2 * params.t_send_ms
    total_after = changed.t_net_unicast_distribution().mean() + 2 * changed.t_send_ms
    assert total_after == pytest.approx(total_before, rel=1e-6)


def test_broadcast_fit_grows_with_the_number_of_destinations():
    params = SANParameters()
    assert (
        params.t_net_broadcast_distribution(5).mean()
        > params.t_net_broadcast_distribution(3).mean()
        > params.t_net_unicast_distribution().mean()
    )


def test_explicit_broadcast_fits_take_precedence():
    fit = BimodalFit(low1=1.0, high1=1.1, low2=1.2, high2=1.3)
    params = SANParameters(broadcast_fits=((5, fit),))
    assert params.broadcast_fit_for(5) is fit
    assert params.broadcast_fit_for(3) is not fit


def test_parameters_from_measured_delays_fits_both_kinds():
    import numpy as np

    rng = np.random.default_rng(0)
    unicast = list(rng.uniform(0.1, 0.3, size=500))
    broadcast = list(rng.uniform(0.2, 0.5, size=500))
    params = SANParameters.from_measured_delays(unicast, {5: broadcast}, t_send_ms=0.02)
    assert params.t_send_ms == 0.02
    assert params.unicast_fit.low1 >= 0.09
    assert params.broadcast_fit_for(5).high2 <= 0.55


def test_negative_t_send_rejected():
    with pytest.raises(ValueError):
        SANParameters(t_send_ms=-0.1)


# ----------------------------------------------------------------------
# Network submodel
# ----------------------------------------------------------------------
def _network_test_model():
    model = SANModel("net")
    model.add_place(Place("network", 1))
    for pid in (0, 1):
        model.add_place(Place(f"p{pid}.cpu", 1))
        model.add_place(Place(f"p{pid}.crashed", 0))
    model.add_place(Place("delivered", 0))
    return model


def test_unicast_path_delivers_exactly_one_token_and_releases_resources():
    model = _network_test_model()
    add_unicast_path(
        model, "data", 0, 1,
        t_send=Constant(0.1), t_net=Constant(0.2), t_receive=Constant(0.1),
        delivery_effect=lambda marking: marking.add("delivered"),
    )
    initial = model.initial_marking()
    initial["msg.data.0.1.sendq"] = 1
    executor = SANExecutor(model, Simulator(seed=0), initial_marking=initial)
    outcome = executor.run()
    assert outcome.final_marking["delivered"] == 1
    assert outcome.final_marking["p0.cpu"] == 1
    assert outcome.final_marking["p1.cpu"] == 1
    assert outcome.final_marking["network"] == 1
    assert outcome.end_time == pytest.approx(0.4)


def test_unicast_path_to_a_crashed_destination_stalls_before_its_cpu():
    model = _network_test_model()
    add_unicast_path(
        model, "data", 0, 1,
        t_send=Constant(0.1), t_net=Constant(0.2), t_receive=Constant(0.1),
        delivery_effect=lambda marking: marking.add("delivered"),
    )
    initial = model.initial_marking()
    initial["msg.data.0.1.sendq"] = 1
    initial["p1.crashed"] = 1
    outcome = SANExecutor(model, Simulator(seed=0), initial_marking=initial).run(until=10.0)
    assert outcome.final_marking["delivered"] == 0
    assert outcome.final_marking["msg.data.0.1.recvq"] == 1
    assert outcome.final_marking["network"] == 1  # the wire is not held forever


def test_two_messages_share_the_network_sequentially():
    model = _network_test_model()
    model.add_place(Place("p2.cpu", 1))
    model.add_place(Place("p2.crashed", 0))
    for src in (0, 1):
        add_unicast_path(
            model, "data", src, 2,
            t_send=Constant(0.0), t_net=Constant(1.0), t_receive=Constant(0.0),
            delivery_effect=lambda marking: marking.add("delivered"),
        )
    initial = model.initial_marking()
    initial["msg.data.0.2.sendq"] = 1
    initial["msg.data.1.2.sendq"] = 1
    outcome = SANExecutor(model, Simulator(seed=0), initial_marking=initial).run()
    assert outcome.final_marking["delivered"] == 2
    assert outcome.end_time == pytest.approx(2.0)  # serialized on the single wire


def test_broadcast_path_fans_out_to_every_destination():
    model = _network_test_model()
    model.add_place(Place("p2.cpu", 1))
    model.add_place(Place("p2.crashed", 0))
    received = []
    add_broadcast_path(
        model, "prop", 0, [1, 2],
        t_send=Constant(0.1), t_net_broadcast=Constant(0.3), t_receive=Constant(0.1),
        delivery_effect_for=lambda dst: (lambda marking, d=dst: received.append(d)),
    )
    initial = model.initial_marking()
    initial["msg.prop.0.sendq"] = 1
    outcome = SANExecutor(model, Simulator(seed=0), initial_marking=initial).run()
    assert sorted(received) == [1, 2]
    assert outcome.final_marking["network"] == 1
    assert outcome.end_time == pytest.approx(0.5)  # one wire occupation, parallel receive


# ----------------------------------------------------------------------
# Failure-detector submodel
# ----------------------------------------------------------------------
def test_fd_settings_validation_and_derived_quantities():
    with pytest.raises(ValueError):
        FDModelSettings(mistake_recurrence_time=1.0, mistake_duration=2.0)
    settings = FDModelSettings(mistake_recurrence_time=10.0, mistake_duration=2.0)
    assert settings.trust_sojourn_mean == pytest.approx(8.0)
    assert settings.suspicion_probability == pytest.approx(0.2)
    assert settings.trust_to_suspect_distribution().mean() == pytest.approx(8.0)
    assert settings.suspect_to_trust_distribution().mean() == pytest.approx(2.0)


def test_static_fd_pair_places_reflect_the_initial_state():
    model = SANModel("fd")
    add_failure_detector_pair(model, 0, 1, settings=None, initially_suspected=True)
    add_failure_detector_pair(model, 0, 2, settings=None)
    marking = model.initial_marking()
    assert marking["p0.susp.1"] == 1 and marking["p0.trust.1"] == 0
    assert marking["p0.susp.2"] == 0 and marking["p0.trust.2"] == 1
    assert model.activities == []


def test_dynamic_fd_pair_alternates_between_trust_and_suspect():
    from repro.san.rewards import IntervalOfTime

    model = SANModel("fd")
    settings = FDModelSettings(
        mistake_recurrence_time=10.0, mistake_duration=2.0, kind="deterministic"
    )
    add_failure_detector_pair(model, 0, 1, settings=settings)
    assert len(model.timed_activities) == 2  # ts and st of Fig. 5
    assert len(model.instantaneous_activities) == 1  # probabilistic init
    suspected_fraction = IntervalOfTime(
        lambda m: float(m["p0.susp.1"]), normalize=True, name="suspected"
    )
    executor = SANExecutor(model, Simulator(seed=1), rewards=[suspected_fraction])
    outcome = executor.run(until=500.0)
    assert outcome.completions > 10
    # Deterministic sojourns of 8 ms (trust) and 2 ms (suspect): the module
    # spends T_M / T_MR = 20% of its time suspecting.
    assert suspected_fraction.value() == pytest.approx(0.2, abs=0.03)


# ----------------------------------------------------------------------
# The composed consensus model
# ----------------------------------------------------------------------
def test_consensus_model_structure_scales_with_n():
    small = build_consensus_model(3)
    large = build_consensus_model(5)
    assert len(large.places) > len(small.places)
    assert len(large.activities) > len(small.activities)
    assert small.has_place("network") and small.has_place("decided_any")


def test_consensus_model_rejects_too_many_crashes():
    with pytest.raises(ValueError):
        build_consensus_model(3, crashed=(0, 1))


def test_failure_free_replication_decides_with_every_process_correct():
    model = build_consensus_model(3)
    reward = latency_reward()
    executor = SANExecutor(model, Simulator(seed=2), rewards=[reward])
    outcome = executor.run(until=1_000.0, stop_predicate=consensus_stop_predicate)
    assert outcome.stopped_by_predicate
    assert 0.05 < reward.value() < 10.0


def test_coordinator_crash_replication_still_decides_but_later():
    def latency_for(crashed):
        model = build_consensus_model(3, crashed=crashed)
        reward = latency_reward()
        executor = SANExecutor(model, Simulator(seed=3), rewards=[reward])
        outcome = executor.run(until=1_000.0, stop_predicate=consensus_stop_predicate)
        assert outcome.stopped_by_predicate
        return reward.value()

    assert latency_for((0,)) > latency_for(())


def test_san_experiment_reports_statistics_and_reproducibility():
    experiment = ConsensusSANExperiment(n_processes=3, seed=5)
    result = experiment.run(replications=30)
    again = ConsensusSANExperiment(n_processes=3, seed=5).run(replications=30)
    assert result.replications == 30
    assert result.undecided == 0
    assert result.latencies_ms == again.latencies_ms
    assert result.interval.lower <= result.mean_ms <= result.interval.upper
    assert not math.isnan(result.mean_ms)
    assert result.cdf().n == 30


def test_san_experiment_latency_grows_with_n():
    small = ConsensusSANExperiment(n_processes=3, seed=6).run(replications=40).mean_ms
    large = ConsensusSANExperiment(n_processes=5, seed=6).run(replications=40).mean_ms
    assert large > small


def test_san_experiment_with_bad_fd_has_higher_latency_than_accurate_fd():
    accurate = ConsensusSANExperiment(n_processes=3, seed=7).run(replications=40).mean_ms
    bad_fd = ConsensusSANExperiment(
        n_processes=3,
        seed=7,
        fd_settings=FDModelSettings(mistake_recurrence_time=3.0, mistake_duration=1.0),
    ).run(replications=40).mean_ms
    assert bad_fd > accurate


def test_san_experiment_precision_target_mode_runs_enough_replications():
    experiment = ConsensusSANExperiment(n_processes=3, seed=8)
    result = experiment.run(replications=10, relative_precision=0.1, min_replications=10, max_replications=200)
    assert 10 <= result.replications <= 200
