"""Cross-module integration tests of the paper's headline *shapes*.

The reproduction does not target the paper's absolute numbers (its cluster
is simulated, not the authors' testbed); these tests pin down the
qualitative results the paper reports:

* §5.2 / Fig. 7 -- latency grows with the number of processes, and the
  calibrated SAN simulation agrees with the measurements.
* §5.3 / Table 1 -- a coordinator crash increases latency; a participant
  crash decreases it for n >= 5.
* §5.4 / Fig. 8 -- the mistake recurrence time grows with the timeout while
  the mistake duration stays bounded.
* §5.4 / Fig. 9 -- the latency falls towards the no-suspicion level as the
  timeout grows.
"""

from __future__ import annotations

import math

import pytest

from repro.cluster.config import ClusterConfig
from repro.core.measurement import MeasurementConfig, MeasurementRunner
from repro.core.scenarios import Scenario
from repro.core.validation import compare_results
from repro.experiments.figure8 import measure_class3_point
from repro.experiments.settings import ExperimentSettings
from repro.sanmodels.consensus_model import ConsensusSANExperiment
from repro.sanmodels.parameters import SANParameters

EXECUTIONS = 80
REPLICATIONS = 80


def _measured_mean(n, scenario, seed, executions=EXECUTIONS):
    config = MeasurementConfig(
        cluster=ClusterConfig(n_processes=n, seed=seed),
        scenario=scenario,
        executions=executions,
    )
    return MeasurementRunner(config).run().mean_latency_ms


@pytest.fixture(scope="module")
def class1_means():
    return {
        n: _measured_mean(n, Scenario.no_failures(), seed=1000 + n)
        for n in (3, 5, 7)
    }


def test_latency_grows_with_the_number_of_processes(class1_means):
    assert class1_means[3] < class1_means[5] < class1_means[7]


def test_latency_growth_is_roughly_linear(class1_means):
    step1 = class1_means[5] - class1_means[3]
    step2 = class1_means[7] - class1_means[5]
    assert step1 > 0 and step2 > 0
    assert 0.3 < step2 / step1 < 3.0


def test_simulation_latency_also_grows_with_n():
    means = {
        n: ConsensusSANExperiment(n_processes=n, seed=50 + n).run(REPLICATIONS).mean_ms
        for n in (3, 5)
    }
    assert means[3] < means[5]


def test_measurement_and_simulation_agree_reasonably_for_class1(class1_means):
    """The combined-methodology validation step (§5.2): after deriving the
    SAN network parameters from the measured end-to-end delays, simulated and
    measured class-1 latencies agree within a factor well below 2."""
    from repro.core.measurement import measure_end_to_end_delays

    delays = measure_end_to_end_delays(ClusterConfig(n_processes=3, seed=77), probes=400)
    parameters = SANParameters.from_measured_delays(
        delays.unicast_delays, {3: delays.broadcast_delays}, t_send_ms=0.025
    )
    simulated = ConsensusSANExperiment(
        n_processes=3, parameters=parameters, seed=78
    ).run(REPLICATIONS)
    config = MeasurementConfig(
        cluster=ClusterConfig(n_processes=3, seed=79),
        scenario=Scenario.no_failures(),
        executions=EXECUTIONS,
    )
    measured = MeasurementRunner(config).run()
    report = compare_results(measured.latencies_ms, simulated.latencies_ms, label="n=3 class 1")
    assert report.agrees_within(0.5)


def test_table1_coordinator_crash_increases_latency_in_measurements():
    for n in (3, 5):
        base = _measured_mean(n, Scenario.no_failures(), seed=2000 + n)
        crash = _measured_mean(n, Scenario.coordinator_crash(), seed=2000 + n)
        assert crash > base


def test_table1_participant_crash_decreases_latency_for_n5_measurements():
    base = _measured_mean(5, Scenario.no_failures(), seed=3005, executions=150)
    crash = _measured_mean(5, Scenario.participant_crash(1), seed=3005, executions=150)
    assert crash < base


def test_table1_crash_ordering_in_the_san_simulation():
    """At n = 5 the SAN model reproduces the coordinator-crash penalty.

    The participant-crash case is only required to stay well below the
    coordinator-crash case: unlike the paper's UltraSAN model, our SAN keeps
    the shared network busy with the next-round traffic addressed to the
    crashed process, which erodes (and at n = 5 slightly reverses) the
    participant-crash speed-up -- a documented deviation (see
    EXPERIMENTS.md).  The speed-up itself is asserted for n = 3 below and
    for the measurements in the dedicated measurement test.
    """

    def simulate(crashed):
        return ConsensusSANExperiment(
            n_processes=5, crashed=crashed, seed=90
        ).run(REPLICATIONS).mean_ms

    no_crash = simulate(())
    coordinator = simulate((0,))
    participant = simulate((1,))
    assert coordinator > no_crash
    assert participant < coordinator
    assert participant < 1.3 * no_crash


def test_table1_n3_participant_crash_simulation_is_faster_than_no_crash():
    """The paper's n = 3 anomaly: the SAN model (single broadcast message)
    predicts a *lower* latency for a participant crash, unlike the
    measurements (§5.3)."""
    no_crash = ConsensusSANExperiment(n_processes=3, seed=91).run(REPLICATIONS).mean_ms
    participant = ConsensusSANExperiment(
        n_processes=3, crashed=(1,), seed=91
    ).run(REPLICATIONS).mean_ms
    assert participant < no_crash


@pytest.fixture(scope="module")
def class3_points():
    settings = ExperimentSettings(
        class3_executions=40,
        seed=4242,
    )
    return {
        timeout: measure_class3_point(settings, 3, timeout, point_seed=4000 + int(timeout))
        for timeout in (1.0, 5.0, 50.0)
    }


def test_figure8_mistake_recurrence_time_grows_with_the_timeout(class3_points):
    tmr = {t: p.mistake_recurrence_time_ms for t, p in class3_points.items()}
    assert tmr[1.0] < tmr[5.0] <= tmr[50.0]


def test_figure8_mistake_duration_stays_bounded(class3_points):
    for point in class3_points.values():
        assert 0.0 <= point.mistake_duration_ms < 15.0


def test_figure9_latency_decreases_towards_the_no_suspicion_level(class3_points):
    latency = {
        t: sum(p.latencies_ms) / len(p.latencies_ms) for t, p in class3_points.items()
    }
    baseline = _measured_mean(3, Scenario.no_failures(), seed=4100, executions=60)
    assert latency[1.0] > latency[50.0]
    assert latency[50.0] == pytest.approx(baseline, rel=0.5)


def test_figure9_san_with_good_qos_matches_the_no_suspicion_simulation(class3_points):
    from repro.core.simulation import SimulationConfig, SimulationRunner

    good_point = class3_points[50.0]
    accurate = ConsensusSANExperiment(n_processes=3, seed=92).run(REPLICATIONS).mean_ms
    if good_point.qos is None or math.isinf(good_point.qos.mistake_recurrence_time):
        pytest.skip("no mistakes observed at T=50 ms in this run")
    simulated = SimulationRunner(
        SimulationConfig(
            n_processes=3,
            scenario=Scenario.wrong_suspicions(timeout_ms=50.0),
            fd_qos=good_point.qos,
            replications=REPLICATIONS,
            seed=93,
        )
    ).run()
    assert simulated.mean_latency_ms == pytest.approx(accurate, rel=0.6)
