"""Tests of the Event lifecycle and ordering."""

from __future__ import annotations

from repro.des.event import Event, EventState


def _event(time, priority=0, seq=0):
    return Event(time, priority, seq, lambda: None)


def test_new_event_is_pending():
    event = _event(1.0)
    assert event.pending
    assert not event.cancelled
    assert not event.fired
    assert event.state is EventState.PENDING


def test_cancel_transitions_to_cancelled():
    event = _event(1.0)
    assert event.cancel()
    assert event.cancelled
    assert not event.pending


def test_cancel_twice_returns_false():
    event = _event(1.0)
    assert event.cancel()
    assert not event.cancel()


def test_ordering_by_time():
    assert _event(1.0) < _event(2.0)
    assert _event(1.0) <= _event(1.0)


def test_ordering_by_priority_when_times_equal():
    assert _event(1.0, priority=-1) < _event(1.0, priority=0)


def test_ordering_by_sequence_when_time_and_priority_equal():
    assert _event(1.0, seq=1) < _event(1.0, seq=2)


def test_repr_contains_state_and_time():
    event = _event(2.5)
    text = repr(event)
    assert "2.5" in text
    assert "pending" in text
