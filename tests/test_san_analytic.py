"""Tests of the analytic CTMC solver (against closed-form results)."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.san import (
    ActivityCounter,
    AnalyticSolver,
    AnalyticSolverError,
    Case,
    FirstPassageTime,
    InstantOfTime,
    IntervalOfTime,
    Place,
    RewardVariable,
    SANModel,
    TimedActivity,
)
from repro.stats.distributions import Exponential


def two_state_model(rate_up: float = 0.5, rate_down: float = 2.0) -> SANModel:
    """A two-state chain: off -> on at ``rate_up``, on -> off at ``rate_down``."""
    model = SANModel("two-state")
    model.add_place(Place("off", 1))
    model.add_place(Place("on", 0))
    model.add_activity(
        TimedActivity(
            "turn_on",
            Exponential(1.0 / rate_up),
            input_arcs=["off"],
            cases=[Case.build(output_arcs=["on"])],
        )
    )
    model.add_activity(
        TimedActivity(
            "turn_off",
            Exponential(1.0 / rate_down),
            input_arcs=["on"],
            cases=[Case.build(output_arcs=["off"])],
        )
    )
    return model


def birth_death_model(capacity: int = 3) -> SANModel:
    """M/M/1/c queue with arrival rate 2 and service rate 1."""
    model = SANModel("mm1c")
    model.add_place(Place("queue", 0))
    model.add_place(Place("free", capacity))
    model.add_activity(
        TimedActivity(
            "arrive",
            Exponential(0.5),
            input_arcs=["free"],
            cases=[Case.build(output_arcs=["queue"])],
        )
    )
    model.add_activity(
        TimedActivity(
            "serve",
            Exponential(1.0),
            input_arcs=["queue"],
            cases=[Case.build(output_arcs=["free"])],
        )
    )
    return model


def queue_length(marking) -> float:
    return float(marking["queue"])


# ----------------------------------------------------------------------
# Steady state
# ----------------------------------------------------------------------
def test_steady_state_of_birth_death_matches_closed_form():
    solver = AnalyticSolver(birth_death_model, lambda: [])
    pi = solver.steady_state()
    space = solver.state_space
    # M/M/1/3 with rho = 2: pi_k proportional to 2^k.
    expected = {0: 1 / 15, 1: 2 / 15, 2: 4 / 15, 3: 8 / 15}
    for k, probability in expected.items():
        state = space.index_of(
            next(s for s in space.states if s["queue"] == k)
        )
        assert pi[state] == pytest.approx(probability)


def test_steady_state_of_two_state_chain():
    solver = AnalyticSolver(lambda: two_state_model(0.5, 2.0), lambda: [])
    pi = solver.steady_state()
    space = solver.state_space
    on = space.index_of(next(s for s in space.states if s["on"]))
    # pi_on = rate_up / (rate_up + rate_down).
    assert pi[on] == pytest.approx(0.5 / 2.5)


# ----------------------------------------------------------------------
# Transient (uniformization) against the closed-form two-state solution
# ----------------------------------------------------------------------
@pytest.mark.parametrize("t", [0.0, 0.1, 0.5, 1.0, 3.0, 10.0])
def test_transient_two_state_matches_closed_form(t):
    rate_up, rate_down = 0.5, 2.0
    solver = AnalyticSolver(lambda: two_state_model(rate_up, rate_down), lambda: [])
    space = solver.state_space
    on = space.index_of(next(s for s in space.states if s["on"]))
    pi_t = solver.transient(t)
    stationary = rate_up / (rate_up + rate_down)
    expected = stationary * (1.0 - math.exp(-(rate_up + rate_down) * t))
    assert pi_t[on] == pytest.approx(expected, abs=1e-9)
    assert pi_t.sum() == pytest.approx(1.0)


def test_accumulated_occupancy_integrates_the_transient():
    rate_up, rate_down = 0.5, 2.0
    horizon = 4.0
    solver = AnalyticSolver(lambda: two_state_model(rate_up, rate_down), lambda: [])
    space = solver.state_space
    on = space.index_of(next(s for s in space.states if s["on"]))
    occupancy = solver.accumulated(horizon)
    total_rate = rate_up + rate_down
    stationary = rate_up / total_rate
    # Closed-form integral of the transient on-probability.
    expected = stationary * horizon - stationary / total_rate * (
        1.0 - math.exp(-total_rate * horizon)
    )
    assert occupancy[on] == pytest.approx(expected, abs=1e-9)
    assert occupancy.sum() == pytest.approx(horizon)


# ----------------------------------------------------------------------
# First passage and absorption rewards
# ----------------------------------------------------------------------
def fill_predicate(marking) -> bool:
    return marking["queue"] >= 3


def test_first_passage_time_matches_hand_solved_chain():
    # Expected time for the M/M/1/3 queue to fill from empty; hand-solved
    # hitting-time equations give h0 = 17/8.
    solver = AnalyticSolver(
        birth_death_model,
        lambda: [FirstPassageTime(fill_predicate, name="fill")],
        stop_predicate=fill_predicate,
    )
    result = solver.solve()
    assert result.mode == "absorbing"
    assert result.rewards["fill"] == pytest.approx(17.0 / 8.0)
    mean, probability = solver.first_passage_time(fill_predicate)
    assert mean == pytest.approx(17.0 / 8.0)
    assert probability == pytest.approx(1.0)


def test_absorbing_mode_counts_expected_completions():
    solver = AnalyticSolver(
        birth_death_model,
        lambda: [
            ActivityCounter(name="all"),
            ActivityCounter({"arrive"}, name="arrivals"),
        ],
        stop_predicate=fill_predicate,
    )
    result = solver.solve()
    # Arrivals fire at rate 2 in every transient state, so E[arrivals] is
    # twice the expected fill time (17/8); every fill path has exactly 3
    # more arrivals than services, giving E[all] = 2 * 17/4 - 3 = 5.5.
    assert result.rewards["arrivals"] == pytest.approx(17.0 / 4.0)
    assert result.rewards["all"] == pytest.approx(5.5)
    services = result.rewards["all"] - result.rewards["arrivals"]
    assert result.rewards["arrivals"] - services == pytest.approx(3.0)


def test_interval_of_time_until_absorption():
    solver = AnalyticSolver(
        birth_death_model,
        lambda: [
            IntervalOfTime(queue_length, name="queue_integral"),
            IntervalOfTime(queue_length, normalize=True, name="queue_average"),
            FirstPassageTime(fill_predicate, name="fill"),
        ],
        stop_predicate=fill_predicate,
    )
    result = solver.solve()
    assert result.rewards["queue_average"] == pytest.approx(
        result.rewards["queue_integral"] / result.rewards["fill"]
    )
    assert 0.0 < result.rewards["queue_average"] < 3.0


def test_horizon_mode_rate_and_impulse_rewards():
    horizon = 50.0
    solver = AnalyticSolver(
        birth_death_model,
        lambda: [
            IntervalOfTime(queue_length, normalize=True, name="mean_queue"),
            ActivityCounter({"serve"}, name="served"),
        ],
        max_time=horizon,
    )
    result = solver.solve()
    assert result.mode == "horizon"
    # At t = 50 the chain is near-stationary (the empty start biases the
    # time average down by ~2%): mean queue length ~2.2667, service
    # throughput = mu * P(queue > 0).
    steady_queue = sum(k * p for k, p in zip(range(4), [1 / 15, 2 / 15, 4 / 15, 8 / 15], strict=True))
    assert result.rewards["mean_queue"] == pytest.approx(steady_queue, rel=0.05)
    assert result.rewards["mean_queue"] < steady_queue  # burn-in bias is downward
    busy = 14 / 15
    assert result.rewards["served"] == pytest.approx(busy * horizon, rel=0.05)


def test_instant_of_time_reward():
    solver = AnalyticSolver(
        lambda: two_state_model(0.5, 2.0),
        lambda: [InstantOfTime(1.0, lambda marking: float(marking["on"]), name="p_on")],
        max_time=5.0,
    )
    result = solver.solve()
    expected = 0.2 * (1.0 - math.exp(-2.5))
    assert result.rewards["p_on"] == pytest.approx(expected, abs=1e-9)


def test_hitting_probability_with_a_recurrent_trap():
    # From A: rate 1 to the target, rate 1 into a B <-> C cycle that never
    # reaches it.  The closed recurrent class used to make the hitting
    # system singular and the probability collapse to 0; the correct
    # answer is 1/2.
    def trap_model():
        model = SANModel("trap")
        model.add_place(Place("a", 1))
        model.add_place(Place("b", 0))
        model.add_place(Place("c", 0))
        model.add_place(Place("target", 0))
        model.add_activity(
            TimedActivity(
                "win", Exponential(1.0), input_arcs=["a"],
                cases=[Case.build(output_arcs=["target"])],
            )
        )
        model.add_activity(
            TimedActivity(
                "trap", Exponential(1.0), input_arcs=["a"],
                cases=[Case.build(output_arcs=["b"])],
            )
        )
        model.add_activity(
            TimedActivity(
                "bc", Exponential(1.0), input_arcs=["b"],
                cases=[Case.build(output_arcs=["c"])],
            )
        )
        model.add_activity(
            TimedActivity(
                "cb", Exponential(1.0), input_arcs=["c"],
                cases=[Case.build(output_arcs=["b"])],
            )
        )
        return model

    def hit(marking) -> bool:
        return marking["target"] >= 1

    solver = AnalyticSolver(trap_model, lambda: [], stop_predicate=hit)
    with pytest.warns(UserWarning, match="probability"):
        mean, probability = solver.first_passage_time(hit)
    assert probability == pytest.approx(0.5)
    assert mean == math.inf


def test_unreachable_predicate_yields_nan():
    solver = AnalyticSolver(
        birth_death_model,
        lambda: [FirstPassageTime(lambda marking: marking["queue"] >= 99, name="never")],
    )
    result = solver.solve()
    assert math.isnan(result.rewards["never"])
    assert result.values("never") == []
    assert result.sample_size("never") == 0


def test_unsupported_reward_type_raises():
    class Exotic(RewardVariable):
        name = "exotic"

    solver = AnalyticSolver(birth_death_model, lambda: [Exotic()])
    with pytest.raises(AnalyticSolverError, match="exotic"):
        solver.solve()


# ----------------------------------------------------------------------
# Result interface (SolverResult compatibility)
# ----------------------------------------------------------------------
def test_analytic_result_reading_interface():
    solver = AnalyticSolver(
        birth_death_model,
        lambda: [FirstPassageTime(fill_predicate, name="fill")],
        stop_predicate=fill_predicate,
        confidence=0.95,
    )
    result = solver.solve()
    assert result.mean("fill") == pytest.approx(17.0 / 8.0)
    assert result.values("fill") == [result.mean("fill")]
    assert result.sample_size("fill") == 1
    interval = result.interval("fill")
    assert interval.half_width == 0.0
    assert interval.confidence == 0.95
    assert interval.contains(result.mean("fill"))
    assert result.n == 1
    assert result.n_states == solver.state_space.n_states
    assert result.solve_seconds >= 0.0
    assert math.isnan(result.mean("unknown"))


def test_transient_rejects_negative_times():
    solver = AnalyticSolver(birth_death_model, lambda: [])
    with pytest.raises(ValueError):
        solver.transient(-1.0)


def test_all_absorbing_chain_transient_is_constant():
    def dead_model():
        model = SANModel("dead")
        model.add_place(Place("p", 1))
        model.add_activity(
            TimedActivity("noop", Exponential(1.0), input_arcs=["missing"])
        )
        model.add_place(Place("missing", 0))
        return model

    solver = AnalyticSolver(dead_model, lambda: [])
    pi = solver.transient(10.0)
    assert np.allclose(pi, solver.state_space.initial_distribution)
    assert np.allclose(solver.accumulated(2.0), pi * 2.0)
