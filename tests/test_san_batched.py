"""Tests of the lock-step batched executor (:mod:`repro.san.batched`).

The batched draw-order contract: every row of a batch is bit-identical
to the scalar executor run with the same seed, at any batch size.  These
tests pin that three ways -- the golden trace at ``B=1``, per-row
equality with the scalar replication loop at ``B>1``, and end-to-end
equality of ``solve(strategy="batched")`` with the scalar solver --
plus the termination semantics (horizon, dead marking, initial stop).
"""

from __future__ import annotations

import pytest

from repro.des.simulator import Simulator
from repro.san import (
    AnalyticSolver,
    BatchedSANExecutor,
    Case,
    Marking,
    Place,
    SANExecutor,
    SANModel,
    TimedActivity,
)
from repro.san.executor import SANExecutionError
from repro.san.solver import SimulativeSolver
from repro.sanmodels import ConsensusSANExperiment
from repro.stats.distributions import Constant, Exponential
from tests.test_san_golden_trace import (
    GOLDEN_CONSENSUS_COMPLETIONS,
    GOLDEN_CONSENSUS_LATENCY,
    GOLDEN_HORIZON,
    GOLDEN_SEED,
    GOLDEN_TRACE,
    TraceRecorder,
    build_golden_model,
    run_golden_trace,
)


# ----------------------------------------------------------------------
# Validation way 1: bit-identical at B=1 against the scalar golden traces
# ----------------------------------------------------------------------
def test_batched_executor_reproduces_golden_trace_at_batch_one():
    recorder, outcome = run_golden_trace(BatchedSANExecutor)
    assert outcome.completions == len(GOLDEN_TRACE)
    assert not outcome.dead_marking
    assert recorder.events == [
        (activity, time, dict(sorted(marking.items())))
        for activity, time, marking in GOLDEN_TRACE
    ]


def test_batched_consensus_replication_zero_snapshot():
    solver = ConsensusSANExperiment(n_processes=3, seed=1).solver()
    replication = solver.run_batch([0])[0]
    assert replication.stopped_by_predicate
    assert replication.rewards["latency"] == GOLDEN_CONSENSUS_LATENCY
    assert replication.rewards["completions"] == GOLDEN_CONSENSUS_COMPLETIONS


def test_batched_golden_final_marking_matches_scalar():
    _recorder, scalar = run_golden_trace(SANExecutor)
    _recorder, batched = run_golden_trace(BatchedSANExecutor)
    assert batched.end_time == scalar.end_time
    assert batched.final_marking == scalar.final_marking
    assert batched.dead_marking == scalar.dead_marking
    assert batched.stopped_by_predicate == scalar.stopped_by_predicate


# ----------------------------------------------------------------------
# Validation way 2: per-row bit-identity with scalar at B>1
# ----------------------------------------------------------------------
def test_batch_rows_are_bit_identical_to_scalar_replications():
    experiment = ConsensusSANExperiment(n_processes=3, seed=11)
    solver = experiment.solver()
    batch = solver.run_batch(range(10))
    for index, row in enumerate(batch):
        scalar = solver.run_replication(index)
        assert row.replication == scalar.replication == index
        assert row.rewards == scalar.rewards, index
        assert row.end_time == scalar.end_time, index
        assert row.stopped_by_predicate == scalar.stopped_by_predicate, index


def test_golden_batch_shares_no_state_across_rows():
    # Three rows with the same seed must produce three identical golden
    # traces: any cross-row stream sharing or marking aliasing breaks this.
    recorders = [TraceRecorder() for _ in range(3)]
    executor = BatchedSANExecutor.for_batch(
        build_golden_model(),
        [GOLDEN_SEED] * 3,
        [[recorder] for recorder in recorders],
    )
    outcomes = executor.run_batch(until=GOLDEN_HORIZON)
    expected = [
        (activity, time, dict(sorted(marking.items())))
        for activity, time, marking in GOLDEN_TRACE
    ]
    for recorder, outcome in zip(recorders, outcomes, strict=True):
        assert recorder.events == expected
        assert outcome.completions == len(GOLDEN_TRACE)


# ----------------------------------------------------------------------
# Solver threading: strategy="batched" never changes results
# ----------------------------------------------------------------------
def test_solver_strategy_batched_matches_scalar_fixed_count():
    experiment = ConsensusSANExperiment(n_processes=3, seed=3)
    scalar = experiment.solver().solve(replications=25)
    batched = experiment.solver().solve(replications=25, strategy="batched")
    assert [r.rewards for r in scalar.replications] == [
        r.rewards for r in batched.replications
    ]
    assert [r.end_time for r in scalar.replications] == [
        r.end_time for r in batched.replications
    ]


def test_solver_batch_size_never_changes_results():
    experiment = ConsensusSANExperiment(n_processes=3, seed=3)
    reference = experiment.solver().solve(replications=13, strategy="batched")
    for batch_size in (1, 4, 13, 64):
        other = experiment.solver().solve(
            replications=13, strategy="batched", batch_size=batch_size
        )
        assert [r.rewards for r in other.replications] == [
            r.rewards for r in reference.replications
        ], batch_size


def test_solver_batch_size_auto_and_jobs_never_change_results():
    # The acceptance matrix of the adaptive-batching PR: "auto" sizing and
    # pooled execution (several batches per worker group) both reproduce
    # the serial scalar results bit-for-bit.
    experiment = ConsensusSANExperiment(n_processes=3, seed=3)
    reference = experiment.solver().solve(replications=25)
    for kwargs in (
        {"batch_size": "auto"},
        {"batch_size": "auto", "jobs": 2},
        {"batch_size": 4, "jobs": 2},  # 7 batches over 2 workers: grouped
    ):
        other = experiment.solver().solve(
            replications=25, strategy="batched", **kwargs
        )
        assert [r.rewards for r in other.replications] == [
            r.rewards for r in reference.replications
        ], kwargs


def test_auto_batch_size_is_structural():
    from repro.san.solver import (
        MAX_AUTO_BATCH_SIZE,
        MIN_AUTO_BATCH_SIZE,
        auto_batch_size,
    )
    from repro.sanmodels.consensus_model import build_consensus_model

    small = auto_batch_size(build_consensus_model(3))
    # A pure function of the model structure: any instance of the same
    # structure gives the same size (so jobs/workers always agree).
    assert auto_batch_size(build_consensus_model(3)) == small
    assert MIN_AUTO_BATCH_SIZE <= small <= MAX_AUTO_BATCH_SIZE
    # Larger models get narrower batches (never wider).
    large = auto_batch_size(build_consensus_model(10))
    assert MIN_AUTO_BATCH_SIZE <= large <= small


def test_solver_precision_loop_matches_scalar_under_batched_strategy():
    experiment = ConsensusSANExperiment(n_processes=3, seed=5)

    def solve(strategy):
        return experiment.solver().solve(
            target_reward="latency",
            relative_precision=0.25,
            min_replications=20,
            max_replications=120,
            strategy=strategy,
        )

    scalar = solve("scalar")
    batched = solve("batched")
    assert scalar.n == batched.n
    assert scalar.precision_achieved == batched.precision_achieved
    assert [r.rewards for r in scalar.replications] == [
        r.rewards for r in batched.replications
    ]


def test_solver_rejects_unknown_strategy():
    solver = ConsensusSANExperiment(n_processes=3).solver()
    with pytest.raises(ValueError, match="unknown strategy"):
        solver.solve(replications=1, strategy="vectorized")
    with pytest.raises(ValueError, match="batch_size"):
        solver.solve(replications=2, strategy="batched", batch_size=0)


def test_experiment_run_accepts_strategy():
    batched_experiment = ConsensusSANExperiment(
        n_processes=3, seed=9, strategy="batched"
    )
    scalar_experiment = ConsensusSANExperiment(n_processes=3, seed=9)
    batched = batched_experiment.run(replications=15)
    scalar = scalar_experiment.run(replications=15)
    assert batched.latencies_ms == scalar.latencies_ms
    assert batched.mean_ms == scalar.mean_ms
    # Per-call override beats the configured strategy.
    overridden = scalar_experiment.run(replications=15, strategy="batched")
    assert overridden.latencies_ms == scalar.latencies_ms


# ----------------------------------------------------------------------
# Validation way 3: agreement with the analytic solver
# (full three-model check: tests/test_solver_compare.py runs the batched
# leg of the solvercompare sweep; this is the cheap direct version.)
# ----------------------------------------------------------------------
def test_batched_means_bracket_the_analytic_value_on_fd_pair():
    from repro.experiments.solver_compare import compare_model_spec

    spec = compare_model_spec("fd-pair")
    exact = AnalyticSolver(
        model_factory=spec.model_factory,
        reward_factory=spec.reward_factory,
        stop_predicate=spec.stop_predicate,
        max_time=spec.max_time,
    ).solve()
    sampled = SimulativeSolver(
        model_factory=spec.model_factory,
        reward_factory=spec.reward_factory,
        stop_predicate=spec.stop_predicate,
        max_time=spec.max_time,
        seed=42,
        confidence=0.95,
        reuse_model=True,
    ).solve(replications=60, strategy="batched")
    for reward_name in spec.reward_names:
        interval = sampled.interval(reward_name)
        assert interval.contains(exact.mean(reward_name)), reward_name


# ----------------------------------------------------------------------
# Termination semantics and interface edges
# ----------------------------------------------------------------------
def _draining_model() -> SANModel:
    model = SANModel("draining")
    model.add_place(Place("fuel", 2))
    model.add_activity(
        TimedActivity(
            "burn",
            Constant(1.5),
            input_arcs=["fuel"],
            cases=[Case.build(output_arcs=["ash"])],
        )
    )
    model.add_place(Place("ash", 0))
    return model


def test_dead_marking_advances_to_the_horizon():
    executor = BatchedSANExecutor(_draining_model(), Simulator(seed=0))
    outcome = executor.run(until=10.0)
    assert outcome.dead_marking
    assert outcome.completions == 2
    assert outcome.end_time == 10.0  # clock still advances to the horizon
    assert outcome.final_marking == Marking({"fuel": 0, "ash": 2})


def test_dead_marking_without_horizon_stops_at_last_event():
    executor = BatchedSANExecutor(_draining_model(), Simulator(seed=0))
    outcome = executor.run(until=None)
    assert outcome.dead_marking
    assert outcome.end_time == 3.0  # two constant 1.5 firings


def test_horizon_before_first_completion():
    executor = BatchedSANExecutor(_draining_model(), Simulator(seed=0))
    outcome = executor.run(until=1.0)
    assert outcome.completions == 0
    assert outcome.end_time == 1.0
    assert not outcome.dead_marking
    assert outcome.final_marking["fuel"] == 2


def test_stop_predicate_true_on_initial_marking():
    executor = BatchedSANExecutor(_draining_model(), Simulator(seed=0))
    outcome = executor.run(until=10.0, stop_predicate=lambda m: m["fuel"] >= 2)
    assert outcome.stopped_by_predicate
    assert outcome.end_time == 0.0
    assert outcome.completions == 0


def test_batch_termination_matches_scalar_on_draining_model():
    for until in (None, 1.0, 1.5, 10.0):
        scalar = SANExecutor(_draining_model(), Simulator(seed=0)).run(
            until=until
        )
        batched = BatchedSANExecutor(
            _draining_model(), Simulator(seed=0)
        ).run(until=until)
        assert batched.end_time == scalar.end_time, until
        assert batched.completions == scalar.completions, until
        assert batched.dead_marking == scalar.dead_marking, until
        assert batched.final_marking == scalar.final_marking, until


def test_initial_marking_override_matches_scalar():
    initial = Marking({"fuel": 1, "bonus": 4})  # "bonus" is undeclared
    scalar = SANExecutor(
        _draining_model(), Simulator(seed=0), initial_marking=initial.copy()
    ).run(until=10.0)
    batched = BatchedSANExecutor(
        _draining_model(), Simulator(seed=0), initial_marking=initial.copy()
    ).run(until=10.0)
    assert batched.completions == scalar.completions == 1
    assert batched.final_marking == scalar.final_marking
    assert batched.final_marking["bonus"] == 4


def test_run_requires_a_single_row():
    executor = BatchedSANExecutor.for_batch(
        _draining_model(), [0, 1], [[], []]
    )
    with pytest.raises(SANExecutionError, match="use run_batch"):
        executor.run(until=1.0)


def test_constructor_requires_streams_or_simulator():
    with pytest.raises(TypeError, match="needs a Simulator"):
        BatchedSANExecutor(_draining_model())
    with pytest.raises(ValueError, match="one entry per row"):
        BatchedSANExecutor(
            _draining_model(),
            streams=[None, None],  # type: ignore[list-item]
            rewards_per_row=[[]],
        )


def test_introspection_helpers():
    executor = BatchedSANExecutor.for_batch(
        _draining_model(), [0, 1], [[], []]
    )
    assert executor.batch_size == 2
    matrix = executor.tokens_matrix()
    assert matrix.shape == (2, 2)
    assert matrix[:, 0].tolist() == [2, 2]  # fuel column, both rows
    assert executor.enabled_activity_names(0) == {"burn"}
    assert executor.scheduled_activity_names(0) == set()  # not started yet
    assert executor.completions == 0
    assert executor.marking["fuel"] == 2
