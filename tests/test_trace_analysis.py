"""Tests of the trace-analysis experiment (experiments.trace_analysis)."""

from __future__ import annotations

import pytest

from repro.experiments.artifacts import ARTIFACT_SCHEMA, json_safe, validate_instance
from repro.experiments.registry import run_experiment
from repro.experiments.settings import ExperimentSettings
from repro.experiments.trace_analysis import (
    SPEC,
    format_trace_analysis,
    n_trace_replications,
    run_trace_analysis,
    trace_analysis_plan,
    trace_analysis_record,
    trace_analysis_rows,
    trace_fault_load,
)
from repro.faults import CrashRecovery, MessageLoss


@pytest.fixture(scope="module")
def smoke_result():
    return run_trace_analysis(ExperimentSettings.from_scale("smoke"))


def test_fault_load_alternates_the_coordinator_crash():
    nominal = trace_fault_load(0, horizon_ms=60.0)
    crashed = trace_fault_load(1, horizon_ms=60.0)
    assert nominal.select(MessageLoss) and crashed.select(MessageLoss)
    assert not nominal.select(CrashRecovery)
    (crash,) = crashed.select(CrashRecovery)
    assert crash.process_id == 0  # the first coordinator
    assert crash.crash_at_ms == pytest.approx(20.0)
    assert crash.recover_at_ms == pytest.approx(40.0)


def test_plan_has_one_point_per_replication_with_unique_seeds():
    settings = ExperimentSettings.from_scale("smoke")
    plan = trace_analysis_plan(settings)
    assert len(plan) == n_trace_replications(settings)
    assert len(set(plan.seeds())) == len(plan)


def test_clustering_separates_crashed_from_nominal_replications(smoke_result):
    result = smoke_result
    assert len(result.clusters) >= 2
    # Every discovered cluster is homogeneous in the injected fault, and
    # both failure modes surface as clusters (not only as noise).
    modes = set()
    for info in result.clusters:
        injected = {
            result.replications[index].crash_injected for index in info["members"]
        }
        assert len(injected) == 1
        modes.update(injected)
    assert modes == {True, False}


def test_worst_replication_slice_contains_the_injected_crash(smoke_result):
    result = smoke_result
    worst = result.replications[result.worst]
    assert worst.crash_injected
    assert result.anchor_kind == "timer"
    assert result.slice_size > 0
    assert result.fault_in_slice
    nominal = result.replications[result.nominal_exemplar]
    assert result.nominal_exemplar != result.worst
    assert not nominal.crash_injected
    assert result.explanation  # the diff found divergent event classes


def test_renderers_and_artifact_round_trip(smoke_result):
    text = format_trace_analysis(smoke_result)
    assert "clusters (most anomalous first):" in text
    assert "injected fault in slice: True" in text
    record = trace_analysis_record(smoke_result)
    assert record["anomalous"]["fault_in_slice"] is True
    assert len(record["replications"]) == len(smoke_result.replications)
    header, rows = trace_analysis_rows(smoke_result)
    assert header[0] == "replication"
    assert len(rows) == len(smoke_result.replications)


def test_run_experiment_emits_a_schema_valid_artifact():
    run = run_experiment(SPEC, settings=ExperimentSettings.from_scale("smoke"))
    payload = json_safe(run.payload())
    validate_instance(payload, ARTIFACT_SCHEMA)  # raises on violation
    assert payload["experiment"] == "traceanalysis"
    assert payload["data"]["anomalous"]["fault_in_slice"] is True
    assert run.table() is not None
