"""Tests of the measurement runner (the paper's experimental methodology)."""

from __future__ import annotations

import pytest

from repro.cluster.config import ClusterConfig
from repro.core.measurement import (
    MeasurementConfig,
    MeasurementRunner,
    measure_end_to_end_delays,
)
from repro.core.scenarios import Scenario


def _config(n=3, seed=1, scenario=None, executions=20, **kwargs):
    return MeasurementConfig(
        cluster=ClusterConfig(n_processes=n, seed=seed),
        scenario=scenario or Scenario.no_failures(),
        executions=executions,
        **kwargs,
    )


def test_measurement_config_validation():
    with pytest.raises(ValueError):
        _config(executions=0)
    with pytest.raises(ValueError):
        _config(separation_ms=0.0)
    with pytest.raises(ValueError):
        _config(start_offset_ms=0.01)  # below the clock sync precision
    with pytest.raises(ValueError):
        _config(sequential=True, max_instance_time_ms=0.0)


def test_class1_measurement_produces_one_latency_per_execution():
    result = MeasurementRunner(_config(executions=25)).run()
    assert len(result.latencies_ms) == 25
    assert result.undecided == 0
    assert result.qos is None
    assert result.summary is not None
    assert 0.1 < result.mean_latency_ms < 5.0
    assert result.recorder.check_agreement()
    assert result.messages_delivered > 0
    assert result.cdf().n == 25


def test_class1_latencies_are_reproducible_for_a_fixed_seed():
    first = MeasurementRunner(_config(seed=9)).run().latencies_ms
    second = MeasurementRunner(_config(seed=9)).run().latencies_ms
    assert first == second


def test_different_seeds_give_different_latencies():
    first = MeasurementRunner(_config(seed=1)).run().latencies_ms
    second = MeasurementRunner(_config(seed=2)).run().latencies_ms
    assert first != second


def test_class2_coordinator_crash_measurement_decides_without_the_coordinator():
    result = MeasurementRunner(
        _config(scenario=Scenario.coordinator_crash(), executions=15)
    ).run()
    assert result.undecided == 0
    assert all(entry.first_decider != 0 for entry in result.recorder.decided_instances())


def test_class3_measurement_estimates_qos_and_counts_heartbeats():
    config = _config(
        n=3,
        scenario=Scenario.wrong_suspicions(timeout_ms=5.0),
        executions=15,
        sequential=True,
        max_instance_time_ms=300.0,
    )
    result = MeasurementRunner(config).run()
    assert result.qos is not None
    assert result.heartbeats_sent > 0
    assert len(result.latencies_ms) >= 10
    assert result.experiment_duration_ms > 0


def test_sequential_mode_never_overlaps_executions():
    config = _config(
        executions=10,
        sequential=True,
        separation_ms=5.0,
        max_instance_time_ms=100.0,
    )
    result = MeasurementRunner(config).run()
    starts = [entry.start_nominal for entry in result.recorder.instances]
    assert starts == sorted(starts)
    # Each execution starts only after the previous one decided.
    for previous, entry in zip(result.recorder.instances, result.recorder.instances[1:], strict=False):
        assert entry.start_nominal >= previous.first_decision_global


def test_end_to_end_delay_microbenchmark_reports_both_kinds_of_delays(cluster_config):
    result = measure_end_to_end_delays(cluster_config, probes=50)
    assert len(result.unicast_delays) == 50
    assert len(result.broadcast_delays) == 50
    assert result.broadcast_cdf().mean() > result.unicast_cdf().mean()
    assert result.unicast_cdf().min > 0.0
