"""Tests of the SAN compilation layer (:mod:`repro.san.compiled`).

The compiled model is a pure lowering of the object graph to integer
indices: these tests pin the index tables (ordering contracts, duration
classification, dependency index) and the :class:`RowMarking` adapter
that lets gate closures and rewards read a token-matrix row through the
plain :class:`Marking` interface.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.san import (
    InputGate,
    InstantaneousActivity,
    Marking,
    Place,
    SANModel,
    TimedActivity,
)
from repro.san.compiled import (
    DURATION_BATCHED,
    DURATION_CONSTANT,
    DURATION_GENERIC,
    RowMarking,
    compile_model,
)
from repro.sanmodels.consensus_model import build_consensus_model
from repro.stats.distributions import (
    BimodalUniform,
    Constant,
    Exponential,
    Mixture,
    Shifted,
)
from tests.test_san_golden_trace import build_golden_model


def test_compiled_model_is_cached_by_structure_version():
    model = build_golden_model()
    first = compile_model(model)
    assert compile_model(model) is first
    # A structural change invalidates the cache.
    model.add_place(Place("extra", 0))
    second = compile_model(model)
    assert second is not first
    assert second.version == model.structure_version
    assert "extra" in second.place_index


def test_place_tables_preserve_declaration_order():
    model = build_golden_model()
    compiled = compile_model(model)
    assert compiled.place_names == tuple(place.name for place in model.places)
    assert compiled.initial_tokens == tuple(place.initial for place in model.places)
    for name, index in compiled.place_index.items():
        assert compiled.place_names[index] == name
    # place_sort_rank reproduces name-sorted order from indices.
    by_rank = sorted(
        range(compiled.n_places), key=compiled.place_sort_rank.__getitem__
    )
    assert [compiled.place_names[i] for i in by_rank] == sorted(
        compiled.place_names
    )


def test_activity_ordering_contracts():
    model = SANModel("ordering")
    model.add_place(Place("p", 1))
    model.add_activity(
        InstantaneousActivity("late", input_arcs=["p"], rank=5)
    )
    model.add_activity(
        InstantaneousActivity("early", input_arcs=["p"], rank=0)
    )
    model.add_activity(
        InstantaneousActivity("tied", input_arcs=["p"], rank=5)
    )
    model.add_activity(TimedActivity("t2", Exponential(1.0), input_arcs=["p"]))
    model.add_activity(TimedActivity("t1", Exponential(1.0), input_arcs=["p"]))
    compiled = compile_model(model)
    # Timed: declaration order; instantaneous: rank-sorted with the
    # declaration order breaking ties (the scalar firing precedence).
    assert [a.name for a in compiled.timed] == ["t2", "t1"]
    assert [a.name for a in compiled.instantaneous] == ["early", "late", "tied"]
    assert [a.index for a in compiled.instantaneous] == [0, 1, 2]


def test_duration_kind_classification():
    model = SANModel("kinds")
    model.add_place(Place("p", 1))
    model.add_activity(TimedActivity("const", Constant(0.5), input_arcs=["p"]))
    model.add_activity(
        TimedActivity("batched", Exponential(1.0), input_arcs=["p"])
    )
    model.add_activity(
        TimedActivity(
            "shifted", Shifted(0.1, Exponential(1.0)), input_arcs=["p"]
        )
    )
    model.add_activity(
        TimedActivity("bimodal", BimodalUniform(), input_arcs=["p"])
    )
    model.add_activity(
        TimedActivity(
            "mixture",
            Mixture([(1.0, Exponential(1.0))]),
            input_arcs=["p"],
        )
    )
    compiled = compile_model(model)
    kinds = {a.name: a.duration_kind for a in compiled.timed}
    assert kinds == {
        "const": DURATION_CONSTANT,
        "batched": DURATION_BATCHED,
        "shifted": DURATION_BATCHED,
        # All-Uniform mixtures (the paper's bimodal delay fit) batch via
        # the inverse-CDF scheme; other mixtures stay on the generic path.
        "bimodal": DURATION_BATCHED,
        "mixture": DURATION_GENERIC,
    }
    const = next(a for a in compiled.timed if a.name == "const")
    assert const.constant_duration == 0.5


def test_dependency_index_routes_gates_by_watch_list():
    model = SANModel("deps")
    model.add_place(Place("a", 1))
    model.add_place(Place("b", 0))
    model.add_activity(
        TimedActivity(
            "declared",
            Exponential(1.0),
            input_arcs=["a"],
            input_gates=[
                InputGate(
                    "watch_b",
                    predicate=lambda m: m["b"] == 0,
                    watched_places=("b",),
                )
            ],
        )
    )
    model.add_activity(
        TimedActivity(
            "conservative",
            Exponential(1.0),
            input_arcs=["a"],
            input_gates=[InputGate("opaque", predicate=lambda m: True)],
        )
    )
    model.add_activity(
        TimedActivity(
            "phantom",
            Exponential(1.0),
            input_arcs=["a"],
            input_gates=[
                InputGate(
                    "watch_undeclared",
                    predicate=lambda m: m["ghost"] == 0,
                    watched_places=("ghost",),
                )
            ],
        )
    )
    compiled = compile_model(model)
    index_a = compiled.place_index["a"]
    index_b = compiled.place_index["b"]
    by_a = {activity.name for activity in compiled.timed_by_place[index_a]}
    assert by_a == {"declared", "phantom"}
    by_b = {activity.name for activity in compiled.timed_by_place[index_b]}
    assert by_b == {"declared"}
    # Empty watch list: conservative, re-evaluated after every completion.
    assert [a.name for a in compiled.global_timed] == ["conservative"]
    # Watched names outside the model go to the name-keyed side index
    # (NOT the conservative list), exactly like the scalar executor.
    assert {
        name: [a.name for a in activities]
        for name, activities in compiled.timed_by_unknown.items()
    } == {"ghost": ["phantom"]}


def test_arc_enabled_mask_matches_per_row_checks():
    compiled = compile_model(build_consensus_model(3))
    rng = np.random.default_rng(7)
    tokens = rng.integers(0, 3, size=(16, compiled.n_places))
    activities = compiled.timed + compiled.instantaneous
    mask = compiled.arc_enabled_mask(tokens, activities)
    for row in range(tokens.shape[0]):
        for column, activity in enumerate(activities):
            expected = all(
                tokens[row, place] >= weight
                for place, weight in activity.input_arcs
            )
            assert mask[row, column] == expected


def test_enablement_mask_applies_gate_predicates_per_row():
    model = SANModel("gated")
    model.add_place(Place("p", 1))
    model.add_place(Place("flag", 0))
    model.add_activity(
        TimedActivity(
            "gated",
            Exponential(1.0),
            input_arcs=["p"],
            input_gates=[
                InputGate(
                    "needs_flag",
                    predicate=lambda m: m["flag"] > 0,
                    watched_places=("flag",),
                )
            ],
        )
    )
    compiled = compile_model(model)
    rows = [[1, 0], [1, 1], [0, 1]]
    markings = [RowMarking(compiled, row) for row in rows]
    mask = compiled.enablement_mask(
        np.array(rows, dtype=np.int64), compiled.timed, markings
    )
    # Row 0: arcs ok, gate fails; row 1: both ok; row 2: arcs fail (and
    # the gate predicate must not even run where the arc mask is False).
    assert mask[:, 0].tolist() == [False, True, False]


# ----------------------------------------------------------------------
# RowMarking
# ----------------------------------------------------------------------
@pytest.fixture
def row_marking():
    compiled = compile_model(build_golden_model())
    row = list(compiled.initial_tokens)
    return compiled, row, RowMarking(compiled, row)


def test_row_marking_reads_and_writes_the_row(row_marking):
    compiled, row, marking = row_marking
    assert marking["pool"] == 3
    marking["pool"] = 1
    assert row[compiled.place_index["pool"]] == 1
    assert marking["pool"] == 1
    assert len(marking) == compiled.n_places
    assert set(marking) == set(compiled.place_names)
    assert "pool" in marking
    assert "nonexistent" not in marking


def test_row_marking_rejects_negative_counts(row_marking):
    _compiled, _row, marking = row_marking
    with pytest.raises(ValueError, match="would become negative"):
        marking["pool"] = -1
    with pytest.raises(ValueError, match="would become negative"):
        marking["ghost"] = -2


def test_row_marking_journals_changed_indices(row_marking):
    compiled, _row, marking = row_marking
    marking["pool"] = 2
    marking["done"] = 1
    marking["fast"] = 0  # no-op write: already 0, must not journal
    changed_idx, changed_names = marking.take_changes()
    assert changed_idx == {
        compiled.place_index["pool"],
        compiled.place_index["done"],
    }
    assert changed_names == set()
    # The journal is consumed.
    assert marking.take_changes() == (set(), set())
    # consume_changes gives Marking-interface name parity.
    marking["slow"] = 2
    assert marking.consume_changes() == {"slow"}


def test_row_marking_overflow_names(row_marking):
    _compiled, _row, marking = row_marking
    assert marking["ghost"] == 0  # undeclared reads default to zero
    marking["ghost"] = 2
    changed_idx, changed_names = marking.take_changes()
    assert changed_idx == set()
    assert changed_names == {"ghost"}
    assert marking["ghost"] == 2
    assert "ghost" in marking
    assert marking.as_dict()["ghost"] == 2
    assert marking.total_tokens() == 3 + 2


def test_row_marking_snapshots_are_independent(row_marking):
    _compiled, row, marking = row_marking
    snapshot = marking.copy()
    assert isinstance(snapshot, Marking)
    assert snapshot.as_dict() == marking.as_dict()
    marking["pool"] = 0
    assert snapshot["pool"] == 3  # the copy does not alias the row
    frozen = marking.freeze()
    assert frozen["pool"] == 0
    assert row[0] == 0 or marking["pool"] == 0
    assert marking.as_dict(drop_zeros=True).get("pool") is None


def test_row_marking_equals_plain_marking(row_marking):
    _compiled, _row, marking = row_marking
    plain = Marking(marking.as_dict())
    assert marking == plain
