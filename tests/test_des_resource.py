"""Tests of the FIFO resource used for CPUs and the shared network medium."""

from __future__ import annotations

import pytest

from repro.des.resource import Resource


def test_single_request_is_served_after_its_service_time(sim):
    resource = Resource(sim, "cpu")
    done = []
    resource.request(2.0, lambda: done.append(sim.now))
    sim.run()
    assert done == [2.0]


def test_requests_are_served_fifo_and_serialised(sim):
    resource = Resource(sim, "cpu")
    done = []
    resource.request(2.0, lambda: done.append(("a", sim.now)))
    resource.request(3.0, lambda: done.append(("b", sim.now)))
    resource.request(1.0, lambda: done.append(("c", sim.now)))
    sim.run()
    assert done == [("a", 2.0), ("b", 5.0), ("c", 6.0)]


def test_capacity_two_serves_two_concurrently(sim):
    resource = Resource(sim, "dual", capacity=2)
    done = []
    for label in ("a", "b", "c"):
        resource.request(2.0, lambda label=label: done.append((label, sim.now)))
    sim.run()
    assert done == [("a", 2.0), ("b", 2.0), ("c", 4.0)]


def test_requests_submitted_later_queue_behind_in_progress_work(sim):
    resource = Resource(sim, "cpu")
    done = []
    resource.request(5.0, lambda: done.append(("a", sim.now)))
    sim.schedule(1.0, lambda: resource.request(1.0, lambda: done.append(("b", sim.now))))
    sim.run()
    assert done == [("a", 5.0), ("b", 6.0)]


def test_queue_length_and_busy_flags(sim):
    resource = Resource(sim, "cpu")
    resource.request(1.0, lambda: None)
    resource.request(1.0, lambda: None)
    assert resource.busy
    assert resource.in_service == 1
    assert resource.queue_length == 1
    sim.run()
    assert not resource.busy
    assert resource.queue_length == 0


def test_cancel_queued_request(sim):
    resource = Resource(sim, "cpu")
    done = []
    resource.request(2.0, lambda: done.append("a"))
    second = resource.request(2.0, lambda: done.append("b"))
    second.cancel()
    sim.run()
    assert done == ["a"]


def test_cancel_in_service_request_has_no_effect(sim):
    resource = Resource(sim, "cpu")
    done = []
    first = resource.request(2.0, lambda: done.append("a"))
    first.cancel()  # already started: completes anyway
    sim.run()
    assert done == ["a"]


def test_stats_track_busy_time_and_waits(sim):
    resource = Resource(sim, "cpu")
    resource.request(2.0, lambda: None)
    resource.request(2.0, lambda: None)
    sim.run()
    assert resource.stats.completed == 2
    assert resource.stats.busy_time == pytest.approx(4.0)
    assert resource.stats.mean_wait() == pytest.approx(1.0)  # (0 + 2) / 2
    assert 0.0 < resource.stats.utilization(elapsed=sim.now) <= 1.0


def test_zero_capacity_rejected(sim):
    with pytest.raises(ValueError):
        Resource(sim, "bad", capacity=0)


def test_negative_service_time_rejected(sim):
    resource = Resource(sim, "cpu")
    with pytest.raises(ValueError):
        resource.request(-1.0, lambda: None)


def test_callbacks_may_issue_new_requests(sim):
    resource = Resource(sim, "cpu")
    done = []

    def chain(remaining):
        done.append(sim.now)
        if remaining:
            resource.request(1.0, chain, remaining - 1)

    resource.request(1.0, chain, 2)
    sim.run()
    assert done == [1.0, 2.0, 3.0]
