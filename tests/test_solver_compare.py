"""Tests of the solver-comparison sweep (experiment + CLI plumbing)."""

from __future__ import annotations

import pytest

from repro.experiments.settings import ExperimentSettings
from repro.experiments.solver_compare import (
    COMPARE_MODELS,
    format_solver_compare,
    run_solver_compare,
    solver_compare_plan,
)


@pytest.fixture(scope="module")
def smoke_result():
    return run_solver_compare(ExperimentSettings.smoke())


def test_sweep_produces_one_point_per_model(smoke_result):
    assert set(smoke_result.points) == {spec.key for spec in COMPARE_MODELS}
    for spec in COMPARE_MODELS:
        point = smoke_result.point(spec.key)
        assert point.n_states > 0
        assert [c.reward for c in point.rewards] == list(spec.reward_names)
        assert point.replications == ExperimentSettings.smoke().replications


def test_solvers_agree_even_at_smoke_scale(smoke_result):
    # Wide smoke-scale intervals must certainly bracket the exact values;
    # the tight-interval agreement contract lives in
    # test_solver_cross_validation.py.
    assert smoke_result.all_within_ci
    for point in smoke_result.points.values():
        for comparison in point.rewards:
            assert comparison.sample_size > 0


def test_timings_are_recorded(smoke_result):
    for point in smoke_result.points.values():
        assert point.analytic_seconds > 0
        assert point.simulative_seconds > 0
        assert point.batched_seconds > 0
        assert point.speedup == pytest.approx(
            point.simulative_seconds / point.analytic_seconds
        )
        assert point.batched_speedup == pytest.approx(
            point.simulative_seconds / point.batched_seconds
        )


def test_batched_leg_is_bit_identical_to_scalar(smoke_result):
    # Scalar and batched legs share replication seeds: any difference is
    # an executor-fidelity bug, not noise, so this is exact equality.
    for point in smoke_result.points.values():
        for comparison in point.rewards:
            assert comparison.batched_mean == comparison.simulative_mean
            assert comparison.batched_within_ci == comparison.within_ci


def test_parallel_sweep_matches_serial_statistics(smoke_result):
    parallel = run_solver_compare(ExperimentSettings.smoke(), jobs=2)
    for key, point in smoke_result.points.items():
        other = parallel.point(key)
        for mine, theirs in zip(point.rewards, other.rewards, strict=True):
            # Wall-clock differs between runs; the statistics must not.
            assert mine.analytic == theirs.analytic
            assert mine.simulative_mean == theirs.simulative_mean
            assert mine.ci_half_width == theirs.ci_half_width


def test_cache_round_trip(tmp_path, smoke_result):
    cache_dir = str(tmp_path / "cache")
    first = run_solver_compare(ExperimentSettings.smoke(), cache_dir=cache_dir)
    second = run_solver_compare(ExperimentSettings.smoke(), cache_dir=cache_dir)
    for key in first.points:
        assert (
            first.point(key).rewards[0].simulative_mean
            == second.point(key).rewards[0].simulative_mean
        )


def test_plan_point_labels_and_indices():
    plan = solver_compare_plan(ExperimentSettings.smoke())
    assert len(plan.points) == len(COMPARE_MODELS)
    for point, spec in zip(plan.points, COMPARE_MODELS, strict=True):
        assert spec.key in point.label


def test_format_renders_every_model_and_verdict(smoke_result):
    text = format_solver_compare(smoke_result)
    for spec in COMPARE_MODELS:
        assert spec.key in text
        for reward_name in spec.reward_names:
            assert reward_name in text
    assert "solvers agree on all models" in text
    assert "x" in text  # the speedup column
