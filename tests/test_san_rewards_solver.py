"""Tests of reward variables and the simulative solver."""

from __future__ import annotations

import math

import pytest

from repro.san.activities import Case, TimedActivity
from repro.san.model import SANModel
from repro.san.places import Place
from repro.san.rewards import (
    ActivityCounter,
    FirstPassageTime,
    InstantOfTime,
    IntervalOfTime,
)
from repro.san.solver import SimulativeSolver
from repro.stats.distributions import Constant, Exponential, Uniform


def _birth_death_model() -> SANModel:
    model = SANModel("bd")
    model.add_place(Place("up", 1))
    model.add_place(Place("down", 0))
    model.add_activity(
        TimedActivity("fail", Constant(2.0), input_arcs=["up"], cases=[Case.build(output_arcs=["down"])])
    )
    model.add_activity(
        TimedActivity("repair", Constant(1.0), input_arcs=["down"], cases=[Case.build(output_arcs=["up"])])
    )
    return model


def _run(model, rewards, until=None, stop=None, seed=0):
    from repro.des.simulator import Simulator
    from repro.san.executor import SANExecutor

    executor = SANExecutor(model, Simulator(seed=seed), rewards=rewards)
    return executor.run(until=until, stop_predicate=stop)


def test_first_passage_time_records_the_first_hit_only():
    reward = FirstPassageTime(lambda m: m["down"] >= 1)
    _run(_birth_death_model(), [reward], until=10.0)
    assert reward.value() == pytest.approx(2.0)
    assert reward.reached


def test_first_passage_time_is_nan_when_never_reached():
    reward = FirstPassageTime(lambda m: m["down"] >= 5)
    _run(_birth_death_model(), [reward], until=10.0)
    assert math.isnan(reward.value())
    assert not reward.reached


def test_interval_of_time_accumulates_rate_weighted_time():
    # The system alternates: up for 2, down for 1 -> over [0, 9], down time = 3.
    reward = IntervalOfTime(lambda m: float(m["down"]), name="downtime")
    _run(_birth_death_model(), [reward], until=9.0)
    assert reward.value() == pytest.approx(3.0)


def test_interval_of_time_normalised_gives_a_time_fraction():
    reward = IntervalOfTime(lambda m: float(m["down"]), normalize=True)
    _run(_birth_death_model(), [reward], until=9.0)
    assert reward.value() == pytest.approx(3.0 / 9.0, rel=0.2)


def test_instant_of_time_samples_the_marking_in_force_at_the_instant():
    reward = InstantOfTime(2.5, lambda m: float(m["down"]))
    _run(_birth_death_model(), [reward], until=10.0)
    assert reward.value() == pytest.approx(1.0)  # down during [2, 3)


def test_activity_counter_counts_selected_activities():
    total = ActivityCounter(name="all")
    fails = ActivityCounter({"fail"}, name="fails")
    _run(_birth_death_model(), [total, fails], until=9.0)
    assert total.value() == 6  # 3 failures + 3 repairs in 9 time units
    assert fails.value() == 3


def _stochastic_factory() -> SANModel:
    model = SANModel("latency")
    model.add_place(Place("start", 1))
    model.add_place(Place("end", 0))
    model.add_activity(
        TimedActivity(
            "work", Uniform(1.0, 3.0), input_arcs=["start"], cases=[Case.build(output_arcs=["end"])]
        )
    )
    return model


def test_solver_runs_independent_replications_and_reports_statistics():
    solver = SimulativeSolver(
        model_factory=_stochastic_factory,
        reward_factory=lambda: [FirstPassageTime(lambda m: m["end"] >= 1, name="latency")],
        stop_predicate=lambda m: m["end"] >= 1,
        seed=7,
    )
    result = solver.solve(replications=50)
    assert result.n == 50
    assert 1.0 <= result.mean("latency") <= 3.0
    interval = result.interval("latency")
    assert interval.lower <= result.mean("latency") <= interval.upper
    assert result.cdf("latency").n == 50
    # Uniform(1, 3) mean is 2.
    assert result.mean("latency") == pytest.approx(2.0, abs=0.25)


def test_solver_replications_differ_but_are_reproducible():
    def factory():
        model = SANModel("exp")
        model.add_place(Place("s", 1))
        model.add_place(Place("e", 0))
        model.add_activity(
            TimedActivity("w", Exponential(1.0), input_arcs=["s"], cases=[Case.build(output_arcs=["e"])])
        )
        return model

    def solver():
        return SimulativeSolver(
            model_factory=factory,
            reward_factory=lambda: [FirstPassageTime(lambda m: m["e"] >= 1, name="latency")],
            stop_predicate=lambda m: m["e"] >= 1,
            seed=3,
        )

    first = solver().solve(replications=10).values("latency")
    second = solver().solve(replications=10).values("latency")
    assert first == second
    assert len(set(first)) > 1  # replications are not identical to each other


def test_solver_precision_target_stops_before_the_maximum():
    solver = SimulativeSolver(
        model_factory=_stochastic_factory,
        reward_factory=lambda: [FirstPassageTime(lambda m: m["end"] >= 1, name="latency")],
        stop_predicate=lambda m: m["end"] >= 1,
        seed=11,
    )
    result = solver.solve(
        target_reward="latency",
        relative_precision=0.2,
        min_replications=10,
        max_replications=500,
    )
    assert 10 <= result.n < 500
    interval = result.interval("latency")
    assert interval.half_width / interval.mean <= 0.2
