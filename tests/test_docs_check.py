"""Tests for the intra-repo markdown link checker (repro.analysis.docs).

The CI ``docs`` job gates on ``python -m repro.analysis.docs``; these
tests pin the link/anchor semantics on synthetic trees and self-host the
gate on the real repository, so a broken README or docs/ link fails
tier-1 locally as well as in CI.
"""

from __future__ import annotations

from pathlib import Path

from repro.analysis.docs import (
    check_docs,
    check_file,
    extract_links,
    heading_anchors,
    main,
    markdown_files,
    slugify,
)

REPO_ROOT = Path(__file__).resolve().parents[1]


# --- link extraction -------------------------------------------------------


def test_extracts_inline_links_and_images_with_line_numbers():
    text = "intro\nsee [a](x.md) and ![img](pic.png)\n[b](y.md#frag)\n"
    assert extract_links(text) == [(2, "x.md"), (2, "pic.png"), (3, "y.md#frag")]


def test_ignores_links_inside_fenced_code_blocks_and_code_spans():
    text = (
        "```\n[fenced](gone.md)\n```\n"
        "a `[span](gone.md)` span\n"
        "[real](real.md)\n"
    )
    assert extract_links(text) == [(5, "real.md")]


def test_external_links_are_out_of_scope(tmp_path):
    page = tmp_path / "page.md"
    page.write_text("[w](https://example.com/gone) [m](mailto:a@b.c)\n")
    assert check_file(page, tmp_path) == []


# --- anchors ---------------------------------------------------------------


def test_slugify_matches_githubs_scheme():
    assert slugify("Trace production and consumption") == (
        "trace-production-and-consumption"
    )
    assert slugify("The `repro.traces` API!") == "the-reprotraces-api"
    assert slugify("Where to add things") == "where-to-add-things"


def test_heading_anchors_deduplicate_with_numeric_suffixes():
    text = "# Title\n## Setup\ntext\n## Setup\n"
    assert heading_anchors(text) == {"title", "setup", "setup-1"}


def test_headings_inside_code_fences_are_not_anchors():
    text = "# Real\n```\n# not a heading\n```\n"
    assert heading_anchors(text) == {"real"}


# --- checking --------------------------------------------------------------


def _write(tmp_path: Path, name: str, text: str) -> Path:
    path = tmp_path / name
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(text)
    return path


def test_missing_file_and_missing_anchor_are_reported(tmp_path):
    _write(tmp_path, "docs/other.md", "# Only Heading\n")
    page = _write(
        tmp_path,
        "docs/page.md",
        "[gone](missing.md)\n[frag](other.md#nope)\n[ok](other.md#only-heading)\n",
    )
    broken = check_file(page, tmp_path)
    assert [(b.line, b.target, b.reason) for b in broken] == [
        (1, "missing.md", "no such file"),
        (2, "other.md#nope", "no such heading anchor"),
    ]
    assert str(broken[0]) == "docs/page.md:1: broken link 'missing.md' (no such file)"


def test_pure_fragment_links_resolve_against_the_same_file(tmp_path):
    page = _write(tmp_path, "docs/page.md", "# Top\n[up](#top)\n[bad](#nope)\n")
    broken = check_file(page, tmp_path)
    assert [(b.line, b.target) for b in broken] == [(3, "#nope")]


def test_fragments_on_non_markdown_targets_are_not_anchor_checked(tmp_path):
    _write(tmp_path, "script.py", "print('hi')\n")
    page = _write(tmp_path, "page.md", "[src](script.py#L1)\n")
    assert check_file(page, tmp_path) == []


def test_markdown_files_covers_readme_roadmap_and_docs_tree(tmp_path):
    _write(tmp_path, "README.md", "readme\n")
    _write(tmp_path, "ROADMAP.md", "roadmap\n")
    _write(tmp_path, "docs/b.md", "b\n")
    _write(tmp_path, "docs/a.md", "a\n")
    _write(tmp_path, "docs/sub/c.md", "c\n")
    names = [str(p.relative_to(tmp_path)) for p in markdown_files(tmp_path)]
    assert names == ["README.md", "ROADMAP.md", "docs/a.md", "docs/b.md", "docs/sub/c.md"]


def test_main_exit_codes(tmp_path, capsys):
    _write(tmp_path, "README.md", "[ok link](ROADMAP.md)\n")
    _write(tmp_path, "ROADMAP.md", "fine\n")
    assert main([str(tmp_path)]) == 0
    _write(tmp_path, "docs/bad.md", "[gone](missing.md)\n")
    assert main([str(tmp_path)]) == 1
    assert "broken link 'missing.md'" in capsys.readouterr().out
    assert main([str(tmp_path / "README.md")]) == 2  # not a directory


# --- self-hosting: the real repository must pass the gate ------------------


def test_repository_markdown_links_all_resolve():
    covered = markdown_files(REPO_ROOT)
    assert REPO_ROOT / "README.md" in covered
    assert REPO_ROOT / "docs" / "ARCHITECTURE.md" in covered
    broken = check_docs(REPO_ROOT)
    assert broken == [], "\n".join(str(b) for b in broken)
