"""Tests of the reachability-graph state-space generator."""

from __future__ import annotations

import numpy as np
import pytest

from repro.san import (
    Case,
    InputGate,
    InstantaneousActivity,
    Marking,
    NonMarkovianModelError,
    Place,
    SANModel,
    StateSpaceError,
    TimedActivity,
    generate_state_space,
)
from repro.stats.distributions import Constant, Exponential, Uniform


def birth_death_model(capacity: int = 3) -> SANModel:
    """M/M/1/c queue: arrivals at rate 2, service at rate 1."""
    model = SANModel("birth-death")
    model.add_place(Place("queue", 0))
    model.add_place(Place("free", capacity))
    model.add_activity(
        TimedActivity(
            "arrive",
            Exponential(0.5),
            input_arcs=["free"],
            cases=[Case.build(output_arcs=["queue"])],
        )
    )
    model.add_activity(
        TimedActivity(
            "serve",
            Exponential(1.0),
            input_arcs=["queue"],
            cases=[Case.build(output_arcs=["free"])],
        )
    )
    return model


def test_birth_death_chain_structure():
    space = generate_state_space(birth_death_model(capacity=3))
    assert space.n_states == 4
    assert not space.absorbing.any()
    q = space.generator().toarray()
    # Rows of a generator sum to zero.
    assert np.allclose(q.sum(axis=1), 0.0)
    # Tridiagonal birth-death rates: up at 2, down at 1.
    empty = space.index_of(Marking({"free": 3}))
    full = space.index_of(Marking({"queue": 3}))
    assert q[empty, empty] == pytest.approx(-2.0)
    assert q[full, full] == pytest.approx(-1.0)


def test_initial_distribution_is_a_point_mass_for_tangible_start():
    space = generate_state_space(birth_death_model())
    assert space.initial_distribution.sum() == pytest.approx(1.0)
    assert space.initial_distribution[space.index_of(Marking({"free": 3}))] == 1.0
    assert space.initial_completions == {}


def test_stop_predicate_states_are_absorbing():
    space = generate_state_space(
        birth_death_model(), stop_predicate=lambda marking: marking["queue"] >= 2
    )
    # Exploration stops at queue == 2: states 0, 1 transient, 2 absorbing.
    assert space.n_states == 3
    assert space.stop_mask.sum() == 1
    stopped = space.index_of(Marking({"queue": 2, "free": 1}))
    assert space.absorbing[stopped]
    assert space.generator().toarray()[stopped].sum() == pytest.approx(0.0)


def test_vanishing_markings_are_eliminated_with_case_probabilities():
    model = SANModel("vanishing")
    model.add_place(Place("start", 1))
    model.add_place(Place("left", 0))
    model.add_place(Place("right", 0))
    model.add_place(Place("done", 0))
    model.add_activity(
        InstantaneousActivity(
            "branch",
            input_arcs=["start"],
            cases=[
                Case.build(probability=0.25, output_arcs=["left"]),
                Case.build(probability=0.75, output_arcs=["right"]),
            ],
        )
    )
    model.add_activity(
        TimedActivity(
            "finish_left",
            Exponential(1.0),
            input_arcs=["left"],
            cases=[Case.build(output_arcs=["done"])],
        )
    )
    model.add_activity(
        TimedActivity(
            "finish_right",
            Exponential(2.0),
            input_arcs=["right"],
            cases=[Case.build(output_arcs=["done"])],
        )
    )
    space = generate_state_space(model)
    # The vanishing "start" marking never appears as a state.
    assert space.n_states == 3
    left = space.index_of(Marking({"left": 1}))
    right = space.index_of(Marking({"right": 1}))
    assert space.initial_distribution[left] == pytest.approx(0.25)
    assert space.initial_distribution[right] == pytest.approx(0.75)
    # The instantaneous firing of the initial stabilisation is recorded.
    assert space.initial_completions == {"branch": pytest.approx(1.0)}


def test_instantaneous_rank_tie_break_matches_executor():
    # Two enabled instantaneous activities: the lower rank consumes the
    # token first, so only its branch exists.
    model = SANModel("ranked")
    model.add_place(Place("token", 1))
    model.add_place(Place("low", 0))
    model.add_place(Place("high", 0))
    model.add_place(Place("sink", 0))
    model.add_activity(
        InstantaneousActivity(
            "second", input_arcs=["token"], cases=[Case.build(output_arcs=["high"])],
            rank=5,
        )
    )
    model.add_activity(
        InstantaneousActivity(
            "first", input_arcs=["token"], cases=[Case.build(output_arcs=["low"])],
            rank=1,
        )
    )
    model.add_activity(
        TimedActivity(
            "drain_low",
            Exponential(1.0),
            input_arcs=["low"],
            cases=[Case.build(output_arcs=["sink"])],
        )
    )
    model.add_activity(
        TimedActivity(
            "drain_high",
            Exponential(1.0),
            input_arcs=["high"],
            cases=[Case.build(output_arcs=["sink"])],
        )
    )
    space = generate_state_space(model)
    markings = [state.as_dict() for state in space.states]
    assert {"low": 1} in markings
    assert {"high": 1} not in markings


def test_non_exponential_activities_are_rejected():
    model = SANModel("constant")
    model.add_place(Place("p", 1))
    model.add_activity(TimedActivity("hold", Constant(1.0), input_arcs=["p"]))
    with pytest.raises(NonMarkovianModelError, match="hold.*Constant"):
        generate_state_space(model)


def test_marking_dependent_distributions_are_evaluated_per_state():
    # Marking-dependent rate: service speeds up with the queue length.
    model = SANModel("marking-dependent")
    model.add_place(Place("queue", 2))
    model.add_activity(
        TimedActivity(
            "serve",
            lambda marking: Exponential(1.0 / max(1, marking["queue"])),
            input_arcs=["queue"],
        )
    )
    space = generate_state_space(model)
    q = space.generator().toarray()
    two = space.index_of(Marking({"queue": 2}))
    one = space.index_of(Marking({"queue": 1}))
    assert q[two, two] == pytest.approx(-2.0)
    assert q[one, one] == pytest.approx(-1.0)


def test_marking_dependent_non_exponential_is_rejected():
    model = SANModel("marking-dependent-bad")
    model.add_place(Place("p", 1))
    model.add_activity(
        TimedActivity(
            "hold", lambda marking: Uniform(0.0, 1.0), input_arcs=["p"]
        )
    )
    with pytest.raises(NonMarkovianModelError):
        generate_state_space(model)


def test_max_states_bound_is_enforced():
    with pytest.raises(StateSpaceError, match="max_states"):
        generate_state_space(birth_death_model(capacity=10), max_states=3)


def test_vanishing_loop_is_detected():
    model = SANModel("loop")
    model.add_place(Place("a", 1))
    model.add_place(Place("b", 0))
    model.add_activity(
        InstantaneousActivity(
            "ab", input_arcs=["a"], cases=[Case.build(output_arcs=["b"])]
        )
    )
    model.add_activity(
        InstantaneousActivity(
            "ba", input_arcs=["b"], cases=[Case.build(output_arcs=["a"])]
        )
    )
    with pytest.raises(StateSpaceError, match="vanishing"):
        generate_state_space(model)


def test_input_gates_shape_the_reachable_set():
    # A gate blocking service below 2 tokens removes the 1 -> 0 transition.
    model = SANModel("gated")
    model.add_place(Place("queue", 0))
    model.add_place(Place("free", 2))
    model.add_activity(
        TimedActivity(
            "arrive",
            Exponential(1.0),
            input_arcs=["free"],
            cases=[Case.build(output_arcs=["queue"])],
        )
    )
    model.add_activity(
        TimedActivity(
            "batch_serve",
            Exponential(1.0),
            input_arcs=[("queue", 2)],
            input_gates=[
                InputGate(
                    name="pair_ready",
                    predicate=lambda marking: marking["queue"] >= 2,
                    watched_places=("queue",),
                )
            ],
            cases=[Case.build(output_arcs=[("free", 2)])],
        )
    )
    space = generate_state_space(model)
    assert space.n_states == 3
    q = space.generator().toarray()
    one = space.index_of(Marking({"queue": 1, "free": 1}))
    empty = space.index_of(Marking({"free": 2}))
    assert q[one, empty] == 0.0


def test_initial_marking_override():
    space = generate_state_space(
        birth_death_model(), initial_marking=Marking({"queue": 3})
    )
    assert space.initial_distribution[space.index_of(Marking({"queue": 3}))] == 1.0


def test_transition_completions_back_impulse_rewards():
    space = generate_state_space(birth_death_model(capacity=1))
    arrivals = space.completion_rate_matrix(frozenset({"arrive"}))
    everything = space.completion_rate_matrix(None)
    empty = space.index_of(Marking({"free": 1}))
    full = space.index_of(Marking({"queue": 1}))
    assert arrivals[empty] == pytest.approx(2.0)
    assert arrivals[full] == pytest.approx(0.0)
    assert everything[full] == pytest.approx(1.0)


def test_summary_and_exit_rates():
    space = generate_state_space(birth_death_model(capacity=1))
    assert "birth-death" in space.summary()
    assert space.exit_rates()[space.index_of(Marking({"free": 1}))] == pytest.approx(2.0)
