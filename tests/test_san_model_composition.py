"""Tests of SAN model containers and the Join / Rep composition operators."""

from __future__ import annotations

import pytest

from repro.san.activities import Case, InstantaneousActivity, TimedActivity
from repro.san.composition import join, rename_model, replicate, shared_place_names
from repro.san.gates import InputGate
from repro.san.model import SANModel, SANValidationError
from repro.san.places import Place
from repro.stats.distributions import Constant


def _simple_model(name="m") -> SANModel:
    model = SANModel(name)
    model.add_place(Place("queue", 1))
    model.add_place(Place("server", 1))
    model.add_place(Place("done", 0))
    model.add_activity(
        TimedActivity(
            "serve",
            Constant(1.0),
            input_arcs=["queue", "server"],
            cases=[Case.build(output_arcs=["done", "server"])],
        )
    )
    return model


def test_model_summary_and_lookups():
    model = _simple_model()
    assert "1 timed" in model.summary()
    assert model.get_place("queue").initial == 1
    assert model.get_activity("serve").name == "serve"
    assert model.has_place("done")
    assert not model.has_place("missing")


def test_duplicate_place_with_same_initial_is_allowed():
    model = _simple_model()
    model.add_place(Place("queue", 1))
    assert len(model.places) == 3


def test_duplicate_place_with_conflicting_initial_rejected():
    model = _simple_model()
    with pytest.raises(SANValidationError):
        model.add_place(Place("queue", 5))


def test_duplicate_activity_name_rejected():
    model = _simple_model()
    with pytest.raises(SANValidationError):
        model.add_activity(InstantaneousActivity("serve"))


def test_validate_detects_undeclared_places():
    model = SANModel("bad")
    model.add_place(Place("a", 1))
    model.add_activity(TimedActivity("t", Constant(1.0), input_arcs=["missing"]))
    with pytest.raises(SANValidationError):
        model.validate()


def test_validate_detects_undeclared_output_places():
    model = SANModel("bad")
    model.add_place(Place("a", 1))
    model.add_activity(
        TimedActivity("t", Constant(1.0), input_arcs=["a"], cases=[Case.build(output_arcs=["missing"])])
    )
    with pytest.raises(SANValidationError):
        model.validate()


def test_initial_marking_reflects_place_declarations():
    marking = _simple_model().initial_marking()
    assert marking["queue"] == 1
    assert marking["done"] == 0


def test_join_merges_places_and_keeps_activities():
    a = _simple_model("a")
    b = SANModel("b")
    b.add_place(Place("server", 1))  # shared with a
    b.add_place(Place("log", 0))
    b.add_activity(InstantaneousActivity("note", input_arcs=["log"]))
    joined = join("ab", [a, b])
    assert {p.name for p in joined.places} == {"queue", "server", "done", "log"}
    assert {act.name for act in joined.activities} == {"serve", "note"}


def test_join_rejects_conflicting_shared_initial_markings():
    a = _simple_model("a")
    b = SANModel("b")
    b.add_place(Place("server", 3))
    with pytest.raises(SANValidationError):
        join("ab", [a, b])


def test_join_requires_at_least_one_model():
    with pytest.raises(SANValidationError):
        join("empty", [])


def test_rename_model_prefixes_places_and_activities_but_not_shared_places():
    renamed = rename_model(_simple_model(), "r0.", shared={"server"})
    names = {p.name for p in renamed.places}
    assert names == {"r0.queue", "server", "r0.done"}
    assert renamed.activities[0].name == "r0.serve"
    arcs = dict(renamed.activities[0].input_arcs)
    assert arcs == {"r0.queue": 1, "server": 1}


def test_renamed_gates_still_reference_the_right_places():
    model = SANModel("g")
    model.add_place(Place("flag", 1))
    model.add_place(Place("token", 1))
    model.add_activity(
        InstantaneousActivity(
            "fire",
            input_arcs=["token"],
            input_gates=[
                InputGate("g", predicate=lambda m: m["flag"] >= 1, watched_places=("flag",))
            ],
        )
    )
    renamed = rename_model(model, "x.")
    activity = renamed.get_activity("x.fire")
    assert activity.enabled(renamed.initial_marking())


def test_replicate_shares_the_declared_common_places():
    replicated = replicate(_simple_model(), 3, shared={"server"})
    place_names = {p.name for p in replicated.places}
    assert "server" in place_names
    assert "r0.queue" in place_names and "r2.queue" in place_names
    assert len([n for n in place_names if n.endswith("queue")]) == 3
    assert len(replicated.activities) == 3


def test_replicate_validates_count():
    with pytest.raises(SANValidationError):
        replicate(_simple_model(), 0)


def test_shared_place_names_reports_overlaps():
    a = _simple_model("a")
    b = SANModel("b")
    b.add_place(Place("server", 1))
    b.add_place(Place("other", 0))
    assert shared_place_names([a, b]) == {"server"}
