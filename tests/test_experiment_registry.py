"""Tests of the declarative experiment registry and the registry-driven CLI.

The CLI discovers its subcommands from :mod:`repro.experiments.registry`
(no hard-coded experiment table), and all option validation/resolution
goes through one shared code path (:class:`ExperimentOptions`).  These
tests run experiments at a *tiny* scale injected into
:data:`~repro.experiments.settings.SCALE_PRESETS`, proving that
registering a preset is all a new scale needs to become CLI-selectable.
"""

from __future__ import annotations

import pytest

from repro import cli
from repro.experiments import registry
from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.registry import ExperimentOptions, ExperimentSpec, run_experiment
from repro.experiments.settings import SCALE_PRESETS, ExperimentSettings

#: Every experiment the eight generator modules must register.
EXPECTED_EXPERIMENTS = {
    "faultsweep",
    "figure6",
    "figure7a",
    "figure7b",
    "figure8",
    "figure9",
    "means",
    "solvercompare",
    "table1",
    "traceanalysis",
}


def tiny_settings() -> ExperimentSettings:
    """A minimal scale for fast CLI-path tests."""
    return ExperimentSettings(
        executions=8,
        class3_executions=6,
        replications=8,
        measured_process_counts=(3,),
        simulated_process_counts=(3,),
        class3_process_counts=(3,),
        timeouts_ms=(2.0,),
        t_send_candidates_ms=(0.01,),
        delay_probes=40,
        seed=5,
    )


@pytest.fixture
def tiny_scale(monkeypatch):
    """Register the tiny preset under the scale name ``tiny``."""
    monkeypatch.setitem(SCALE_PRESETS, "tiny", tiny_settings)
    return "tiny"


# ----------------------------------------------------------------------
# Registry mechanics
# ----------------------------------------------------------------------
def test_registry_discovers_every_experiment():
    assert set(registry.names()) == EXPECTED_EXPERIMENTS
    assert registry.names() == sorted(EXPECTED_EXPERIMENTS)


def test_cli_has_no_hardcoded_experiment_table():
    assert not hasattr(cli, "REPORTS")


def test_get_unknown_experiment_raises():
    with pytest.raises(KeyError, match="unknown experiment"):
        registry.get("figure99")


def test_registering_a_duplicate_name_raises():
    duplicate = ExperimentSpec(
        name="figure6",
        description="imposter",
        render_text=str,
        to_record=lambda result: {},
        run=lambda context: None,
    )
    with pytest.raises(ValueError, match="already registered"):
        registry.register(duplicate)


def test_spec_requires_run_or_plan_plus_aggregate():
    with pytest.raises(ValueError, match="must define either"):
        ExperimentSpec(
            name="incomplete",
            description="no execution strategy",
            render_text=str,
            to_record=lambda result: {},
        )


def test_build_points_reports_the_sweep_grid():
    settings = tiny_settings()
    points = registry.get("figure6").build_points(settings)
    assert [dict(p.kwargs)["n_processes"] for p in points] == [3, 5]
    # Composite experiments construct plans mid-run from intermediate
    # results, so they expose no up-front grid.
    assert registry.get("figure7b").build_points(settings) == []


# ----------------------------------------------------------------------
# Shared option validation / settings resolution
# ----------------------------------------------------------------------
def test_negative_jobs_is_rejected_with_a_consistent_message():
    with pytest.raises(ValueError, match="positive integer, or 0"):
        ExperimentOptions(jobs=-1).validate()


def test_zero_jobs_means_one_worker_per_cpu_and_is_accepted():
    ExperimentOptions(jobs=0).validate()


def test_cache_dir_conflicting_with_a_file_is_rejected(tmp_path):
    conflict = tmp_path / "not-a-dir"
    conflict.write_text("occupied")
    with pytest.raises(ValueError, match="is not a directory"):
        ExperimentOptions(cache_dir=str(conflict)).validate()


def test_resolve_settings_applies_scale_and_seed(tiny_scale):
    settings = ExperimentOptions(scale=tiny_scale, seed=99).resolve_settings()
    assert settings.executions == tiny_settings().executions
    assert settings.seed == 99


def test_scale_name_identifies_presets_ignoring_seed_overrides(tiny_scale):
    assert ExperimentSettings.smoke().scale_name() == "smoke"
    assert ExperimentOptions(scale=tiny_scale, seed=7).resolve_settings().scale_name() == "tiny"
    custom = ExperimentSettings(executions=123456)
    assert custom.scale_name() == "custom"


# ----------------------------------------------------------------------
# The registry-driven CLI
# ----------------------------------------------------------------------
def test_cli_list_names_every_registered_experiment(capsys):
    assert cli.main(["--list"]) == 0
    output = capsys.readouterr().out
    for name in EXPECTED_EXPERIMENTS:
        assert name in output


def test_cli_requires_an_experiment_or_list():
    with pytest.raises(SystemExit):
        cli.main([])


def test_cli_rejects_negative_jobs(capsys):
    with pytest.raises(SystemExit):
        cli.main(["figure6", "--jobs", "-2"])
    assert "positive integer" in capsys.readouterr().err


def test_cli_rejects_unknown_experiments():
    with pytest.raises(SystemExit):
        cli.main(["figure99"])


def test_cli_text_output_is_identical_to_the_library_path(tiny_scale, capsys):
    """The registry/CLI plumbing must not alter the rendered report."""
    assert cli.main(["figure6", "--scale", tiny_scale]) == 0
    output = capsys.readouterr().out
    body = output.split("====\n", 1)[1].rsplit("\n[figure6 regenerated", 1)[0]
    expected = format_figure6(run_figure6(tiny_settings()))
    assert body == expected


def test_run_experiment_records_point_timings(tiny_scale):
    run = run_experiment(
        registry.get("figure7a"), options=ExperimentOptions(scale=tiny_scale)
    )
    assert run.manifest.experiment == "figure7a"
    assert run.manifest.scale == "tiny"
    labels = [point.label for point in run.manifest.points]
    assert labels == ["figure7a n=3"]
    assert all(point.seconds > 0 for point in run.manifest.points)
    assert run.manifest.wall_clock_seconds >= max(p.seconds for p in run.manifest.points)


def test_run_experiment_enforces_a_spec_scale_restriction(tiny_scale):
    restricted = ExperimentSpec(
        name="restricted-demo",
        description="only runs at smoke scale",
        render_text=str,
        to_record=lambda result: {},
        run=lambda context: "ok",
        scales=("smoke",),
    )
    with pytest.raises(ValueError, match="does not support scale"):
        run_experiment(restricted, options=ExperimentOptions(scale=tiny_scale))
    assert run_experiment(restricted, options=ExperimentOptions(scale="smoke")).result == "ok"


def test_manifest_scale_reflects_explicit_settings_not_stale_options(tiny_scale):
    """An explicit settings object wins over options for provenance too."""
    run = run_experiment(
        registry.get("figure7a"),
        options=ExperimentOptions(scale="smoke", jobs=1),
        settings=tiny_settings(),
    )
    assert run.manifest.scale == "tiny"
    assert run.manifest.settings_hash == tiny_settings().settings_hash()


def test_composite_experiments_time_their_ad_hoc_stages(tiny_scale):
    run = run_experiment(
        registry.get("figure7b"), options=ExperimentOptions(scale=tiny_scale)
    )
    labels = [point.label for point in run.manifest.points]
    # The inline measurement stage, the figure6 sub-sweep, and the t_send
    # candidate sweep must all appear in the manifest.
    assert "figure7b measure n=5" in labels
    assert any(label.startswith("figure6") for label in labels)
    assert any(label.startswith("figure7b t_send") for label in labels)
