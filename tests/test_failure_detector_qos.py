"""Tests of the Chen-Toueg-Aguilera QoS metric estimation (§3.4 / §4)."""

from __future__ import annotations

import math

import pytest
from hypothesis import given, strategies as st

from repro.failure_detectors.history import FailureDetectorHistory
from repro.failure_detectors.qos import (
    estimate_pair_qos,
    estimate_qos,
    estimate_qos_from_intervals,
)


def _periodic_history(
    monitor=0,
    monitored=1,
    period=10.0,
    duration=2.0,
    experiment=100.0,
) -> FailureDetectorHistory:
    """Suspicions starting every ``period`` ms, each lasting ``duration`` ms."""
    history = FailureDetectorHistory()
    t = period
    while t + duration <= experiment:
        history.record(monitor, monitored, t, suspected=True)
        history.record(monitor, monitored, t + duration, suspected=False)
        t += period
    return history


def test_history_records_only_actual_state_changes():
    history = FailureDetectorHistory()
    history.record(0, 1, 1.0, suspected=True)
    history.record(0, 1, 2.0, suspected=True)  # duplicate: ignored
    history.record(0, 1, 3.0, suspected=False)
    assert len(history) == 2
    assert history.transition_counts(0, 1) == (1, 1)


def test_suspicion_intervals_and_time_suspected():
    history = _periodic_history(period=10.0, duration=2.0, experiment=35.0)
    intervals = history.suspicion_intervals(0, 1, 35.0)
    assert intervals == [(10.0, 12.0), (20.0, 22.0), (30.0, 32.0)]
    assert history.time_suspected(0, 1, 35.0) == pytest.approx(6.0)


def test_open_suspicion_interval_is_truncated_at_the_end_time():
    history = FailureDetectorHistory()
    history.record(0, 1, 5.0, suspected=True)
    assert history.suspicion_intervals(0, 1, 8.0) == [(5.0, 8.0)]
    assert history.time_suspected(0, 1, 8.0) == pytest.approx(3.0)


def test_pair_qos_matches_the_papers_equations():
    # 9 mistakes of 2 ms each over a 100 ms experiment.
    history = _periodic_history(period=10.0, duration=2.0, experiment=100.0)
    qos = estimate_pair_qos(history, 0, 1, experiment_duration=100.0)
    # n_TS = n_ST = 9  =>  T_MR = 2 * 100 / 18 = 11.11 ms
    assert qos.mistake_recurrence_time == pytest.approx(2 * 100.0 / 18)
    # T_M = T_MR * T_S / T_exp = 11.11 * 18 / 100 = 2 ms
    assert qos.mistake_duration == pytest.approx(qos.mistake_recurrence_time * 18.0 / 100.0)
    assert qos.n_trust_to_suspect == 9
    assert qos.n_suspect_to_trust == 9


def test_pair_without_mistakes_has_infinite_recurrence_time():
    qos = estimate_pair_qos(FailureDetectorHistory(), 0, 1, experiment_duration=50.0)
    assert math.isinf(qos.mistake_recurrence_time)
    assert qos.mistake_duration == 0.0


def test_estimate_qos_averages_over_pairs_and_separates_crashed_processes():
    history = _periodic_history(0, 1, period=10.0, duration=2.0, experiment=100.0)
    for t, suspected in [(1.0, True), (2.0, False), (21.0, True), (22.0, False)]:
        history.record(1, 0, t, suspected)
    # Pair (0, 2): process 2 crashed at t=0 and was suspected at t=7.
    history.record(0, 2, 7.0, suspected=True)
    qos = estimate_qos(history, n_processes=3, experiment_duration=100.0, crashed={2})
    finite_pairs = [p for p in qos.pairs if math.isfinite(p.mistake_recurrence_time)]
    assert len(finite_pairs) == 2  # (0,1) and (1,0); pairs about process 2 excluded
    assert qos.detection_time == pytest.approx(7.0)
    assert 0.0 < qos.suspicion_fraction < 1.0


def test_detection_time_is_measured_from_the_actual_crash_instant():
    """Regression: T_D used to assume every crash happened at t=0, inflating
    the detection time of mid-run crashes by the crash instant itself."""
    history = FailureDetectorHistory()
    # Process 1 crashes at t=40 and is suspected permanently at t=47.
    history.record(0, 1, 47.0, suspected=True)
    qos = estimate_qos(history, n_processes=2, experiment_duration=100.0, crashed={1: 40.0})
    assert qos.detection_time == pytest.approx(7.0)


def test_detection_time_with_a_set_still_measures_from_time_zero():
    history = FailureDetectorHistory()
    history.record(0, 1, 7.0, suspected=True)
    qos = estimate_qos(history, n_processes=2, experiment_duration=100.0, crashed={1})
    assert qos.detection_time == pytest.approx(7.0)


def test_detection_is_instantaneous_when_already_suspected_at_the_crash():
    history = FailureDetectorHistory()
    # Wrongly suspected at t=30 and never trusted again; the crash at t=40
    # is therefore detected immediately, not at -10.
    history.record(0, 1, 30.0, suspected=True)
    qos = estimate_qos(history, n_processes=2, experiment_duration=100.0, crashed={1: 40.0})
    assert qos.detection_time == pytest.approx(0.0)


def test_suspicions_retracted_after_the_crash_do_not_count_as_detection():
    import math as _math

    history = FailureDetectorHistory()
    history.record(0, 1, 45.0, suspected=True)
    history.record(0, 1, 50.0, suspected=False)  # trusted again: not detected
    qos = estimate_qos(history, n_processes=2, experiment_duration=100.0, crashed={1: 40.0})
    assert _math.isnan(qos.detection_time)


def test_interval_estimator_honors_the_crashed_argument():
    """Regression: the cross-check estimator used to include pairs involving
    crashed processes, disagreeing with estimate_qos on crash scenarios."""
    history = _periodic_history(0, 1, period=10.0, duration=2.0, experiment=1000.0)
    # Process 2 crashed at t=100 and stays suspected forever afterwards: a
    # huge "suspicion interval" that is detection, not a mistake.
    history.record(0, 2, 105.0, suspected=True)
    with_crash = estimate_qos_from_intervals(
        history, n_processes=3, experiment_duration=1000.0, crashed={2: 100.0}
    )
    clean = estimate_qos_from_intervals(
        history, n_processes=2, experiment_duration=1000.0
    )
    assert with_crash == clean
    equations = estimate_qos(
        history, n_processes=3, experiment_duration=1000.0, crashed={2: 100.0}
    )
    assert with_crash["mistake_duration"] == pytest.approx(
        equations.mistake_duration, rel=0.05
    )
    assert with_crash["mistake_recurrence_time"] == pytest.approx(
        equations.mistake_recurrence_time, rel=0.05
    )


def test_estimate_qos_with_no_mistakes_reports_infinite_recurrence():
    qos = estimate_qos(FailureDetectorHistory(), n_processes=3, experiment_duration=10.0)
    assert math.isinf(qos.mistake_recurrence_time)
    assert qos.mistake_duration == 0.0
    assert qos.suspicion_fraction == 0.0
    assert math.isnan(qos.detection_time)


def test_interval_estimator_agrees_with_equation_estimator_on_long_experiments():
    history = _periodic_history(period=10.0, duration=2.0, experiment=1000.0)
    by_equations = estimate_pair_qos(history, 0, 1, experiment_duration=1000.0)
    by_intervals = estimate_qos_from_intervals(history, n_processes=2, experiment_duration=1000.0)
    assert by_intervals["mistake_recurrence_time"] == pytest.approx(
        by_equations.mistake_recurrence_time, rel=0.05
    )
    assert by_intervals["mistake_duration"] == pytest.approx(
        by_equations.mistake_duration, rel=0.05
    )


def test_estimate_qos_rejects_nonpositive_duration():
    with pytest.raises(ValueError):
        estimate_pair_qos(FailureDetectorHistory(), 0, 1, experiment_duration=0.0)


@given(
    period=st.floats(min_value=5.0, max_value=50.0),
    duration=st.floats(min_value=0.5, max_value=4.0),
)
def test_qos_estimator_recovers_period_and_duration_of_periodic_mistakes(period, duration):
    experiment = 2000.0
    history = _periodic_history(period=period, duration=duration, experiment=experiment)
    qos = estimate_pair_qos(history, 0, 1, experiment_duration=experiment)
    assert qos.mistake_recurrence_time == pytest.approx(period, rel=0.1)
    assert qos.mistake_duration == pytest.approx(duration, rel=0.1)


@given(
    st.lists(
        st.tuples(st.floats(min_value=0.0, max_value=99.0), st.booleans()),
        max_size=30,
    )
)
def test_time_suspected_is_bounded_by_the_experiment_duration(events):
    history = FailureDetectorHistory()
    for time, suspected in sorted(events):
        history.record(0, 1, time, suspected)
    suspected_time = history.time_suspected(0, 1, 100.0)
    assert 0.0 <= suspected_time <= 100.0
