"""Tests of SAN markings (token bookkeeping, the change journal, freezing)."""

from __future__ import annotations

from collections.abc import Hashable

import pytest
from hypothesis import given, strategies as st

from repro.san.marking import FrozenMarking, Marking
from repro.san.places import Place


def test_unknown_places_have_zero_tokens():
    marking = Marking()
    assert marking["anything"] == 0


def test_set_get_add_remove():
    marking = Marking()
    marking["a"] = 2
    marking.add("a")
    marking.remove("a", 2)
    assert marking["a"] == 1


def test_place_objects_and_names_are_interchangeable():
    marking = Marking()
    place = Place("p", 0)
    marking[place] = 3
    assert marking["p"] == 3
    assert marking.has(place, 3)


def test_negative_markings_are_rejected():
    marking = Marking({"a": 1})
    with pytest.raises(ValueError):
        marking.remove("a", 2)


def test_initialisation_from_mapping():
    marking = Marking({"a": 1, "b": 0})
    assert marking["a"] == 1
    assert marking["b"] == 0


def test_copy_is_independent():
    original = Marking({"a": 1})
    clone = original.copy()
    clone["a"] = 5
    assert original["a"] == 1


def test_equality_ignores_zero_entries():
    assert Marking({"a": 1, "b": 0}) == Marking({"a": 1})
    assert Marking({"a": 1}) == {"a": 1, "c": 0}
    assert Marking({"a": 1}) != Marking({"a": 2})


def test_markings_are_unhashable():
    with pytest.raises(TypeError):
        hash(Marking())


def test_markings_are_not_instances_of_hashable():
    # ``__hash__ = None`` (not a raising method) is what makes the ABC
    # machinery agree that markings are unhashable.
    assert not isinstance(Marking(), Hashable)
    assert Marking.__hash__ is None


def test_markings_cannot_be_dict_keys_or_set_members():
    with pytest.raises(TypeError):
        _ = {Marking(): 1}
    with pytest.raises(TypeError):
        _ = {Marking({"a": 1})}


def test_total_tokens_and_set_all():
    marking = Marking()
    marking.set_all(["a", "b", "c"], 2)
    assert marking.total_tokens() == 6


def test_as_dict_drop_zeros():
    marking = Marking({"a": 1, "b": 0})
    assert marking.as_dict(drop_zeros=True) == {"a": 1}
    assert marking.as_dict() == {"a": 1, "b": 0}


def test_change_journal_records_real_changes_only():
    marking = Marking({"a": 1})
    marking.consume_changes()
    marking["a"] = 1  # no change
    marking["b"] = 2
    marking.add("a")
    changed = marking.consume_changes()
    assert changed == {"a", "b"}
    assert marking.consume_changes() == set()


def test_change_journal_cleared_by_consume():
    marking = Marking()
    marking["x"] = 1
    assert marking.consume_changes() == {"x"}
    marking["x"] = 1
    assert marking.consume_changes() == set()


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=5), st.integers(min_value=0, max_value=20), max_size=8
    )
)
def test_copy_round_trips_arbitrary_markings(tokens):
    marking = Marking(tokens)
    assert marking.copy() == marking
    assert marking.total_tokens() == sum(tokens.values())


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(min_value=1, max_value=3)),
        max_size=20,
    )
)
def test_add_never_produces_negative_tokens_and_journal_tracks_touched_places(ops):
    marking = Marking()
    marking.consume_changes()
    touched = set()
    for place, count in ops:
        marking.add(place, count)
        touched.add(place)
    assert all(marking[p] >= 0 for p in ("a", "b", "c"))
    assert marking.consume_changes() == touched


# ----------------------------------------------------------------------
# FrozenMarking: the hashable state key of the state-space generator
# ----------------------------------------------------------------------
def test_frozen_markings_are_hashable_and_equal_by_value():
    frozen = Marking({"a": 1, "b": 2}).freeze()
    assert isinstance(frozen, Hashable)
    assert hash(frozen) == hash(Marking({"b": 2, "a": 1}).freeze())
    assert frozen == Marking({"a": 1, "b": 2}).freeze()
    assert frozen == FrozenMarking({"a": 1, "b": 2})


def test_frozen_markings_drop_explicit_zeros():
    sparse = Marking({"a": 1}).freeze()
    padded = Marking({"a": 1, "b": 0, "c": 0}).freeze()
    assert sparse == padded
    assert hash(sparse) == hash(padded)
    assert len(padded) == 1
    assert "b" not in padded


def test_frozen_marking_reads_like_a_marking():
    frozen = FrozenMarking({"a": 2, "b": 0})
    assert frozen["a"] == 2
    assert frozen["missing"] == 0
    assert frozen[Place("a", 0)] == 2
    assert frozen.has("a", 2) and not frozen.has("a", 3)
    assert frozen.as_dict() == {"a": 2}
    assert list(frozen) == ["a"]
    assert frozen.total_tokens() == 2


def test_frozen_marking_rejects_negative_counts():
    with pytest.raises(ValueError):
        FrozenMarking({"a": -1})


def test_freeze_is_a_snapshot_not_a_view():
    marking = Marking({"a": 1})
    frozen = marking.freeze()
    marking.add("a")
    assert frozen["a"] == 1
    assert marking["a"] == 2


def test_thaw_round_trip_gives_independent_mutable_marking():
    frozen = FrozenMarking({"a": 3})
    thawed = frozen.thaw()
    assert isinstance(thawed, Marking)
    assert thawed == frozen
    thawed.add("a")
    assert frozen["a"] == 3


def test_frozen_marking_equality_against_marking_and_mapping():
    frozen = FrozenMarking({"a": 1})
    assert frozen == Marking({"a": 1, "b": 0})
    assert frozen == {"a": 1, "c": 0}
    assert frozen != Marking({"a": 2})
    assert FrozenMarking.from_marking(Marking({"a": 1})) == frozen


def test_frozen_markings_work_as_dict_keys():
    index = {Marking({"a": 1}).freeze(): 0}
    assert index[Marking({"a": 1, "b": 0}).freeze()] == 0


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=5), st.integers(min_value=0, max_value=20), max_size=8
    )
)
def test_freeze_thaw_round_trips_arbitrary_markings(tokens):
    marking = Marking(tokens)
    frozen = marking.freeze()
    assert frozen == marking
    assert frozen.thaw() == marking
    assert frozen.total_tokens() == sum(tokens.values())
    # Hash/equality agree with the zero-dropped canonical form.
    canonical = FrozenMarking({k: v for k, v in tokens.items() if v})
    assert frozen == canonical
    assert hash(frozen) == hash(canonical)
