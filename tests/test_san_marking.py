"""Tests of SAN markings (token bookkeeping and the change journal)."""

from __future__ import annotations

import pytest
from hypothesis import given, strategies as st

from repro.san.marking import Marking
from repro.san.places import Place


def test_unknown_places_have_zero_tokens():
    marking = Marking()
    assert marking["anything"] == 0


def test_set_get_add_remove():
    marking = Marking()
    marking["a"] = 2
    marking.add("a")
    marking.remove("a", 2)
    assert marking["a"] == 1


def test_place_objects_and_names_are_interchangeable():
    marking = Marking()
    place = Place("p", 0)
    marking[place] = 3
    assert marking["p"] == 3
    assert marking.has(place, 3)


def test_negative_markings_are_rejected():
    marking = Marking({"a": 1})
    with pytest.raises(ValueError):
        marking.remove("a", 2)


def test_initialisation_from_mapping():
    marking = Marking({"a": 1, "b": 0})
    assert marking["a"] == 1
    assert marking["b"] == 0


def test_copy_is_independent():
    original = Marking({"a": 1})
    clone = original.copy()
    clone["a"] = 5
    assert original["a"] == 1


def test_equality_ignores_zero_entries():
    assert Marking({"a": 1, "b": 0}) == Marking({"a": 1})
    assert Marking({"a": 1}) == {"a": 1, "c": 0}
    assert Marking({"a": 1}) != Marking({"a": 2})


def test_markings_are_unhashable():
    with pytest.raises(TypeError):
        hash(Marking())


def test_total_tokens_and_set_all():
    marking = Marking()
    marking.set_all(["a", "b", "c"], 2)
    assert marking.total_tokens() == 6


def test_as_dict_drop_zeros():
    marking = Marking({"a": 1, "b": 0})
    assert marking.as_dict(drop_zeros=True) == {"a": 1}
    assert marking.as_dict() == {"a": 1, "b": 0}


def test_change_journal_records_real_changes_only():
    marking = Marking({"a": 1})
    marking.consume_changes()
    marking["a"] = 1  # no change
    marking["b"] = 2
    marking.add("a")
    changed = marking.consume_changes()
    assert changed == {"a", "b"}
    assert marking.consume_changes() == set()


def test_change_journal_cleared_by_consume():
    marking = Marking()
    marking["x"] = 1
    assert marking.consume_changes() == {"x"}
    marking["x"] = 1
    assert marking.consume_changes() == set()


@given(
    st.dictionaries(
        st.text(min_size=1, max_size=5), st.integers(min_value=0, max_value=20), max_size=8
    )
)
def test_copy_round_trips_arbitrary_markings(tokens):
    marking = Marking(tokens)
    assert marking.copy() == marking
    assert marking.total_tokens() == sum(tokens.values())


@given(
    st.lists(
        st.tuples(st.sampled_from(["a", "b", "c"]), st.integers(min_value=1, max_value=3)),
        max_size=20,
    )
)
def test_add_never_produces_negative_tokens_and_journal_tracks_touched_places(ops):
    marking = Marking()
    marking.consume_changes()
    touched = set()
    for place, count in ops:
        marking.add(place, count)
        touched.add(place)
    assert all(marking[p] >= 0 for p in ("a", "b", "c"))
    assert marking.consume_changes() == touched
