"""Tests of the failure detectors: static, heartbeat and QoS-driven."""

from __future__ import annotations

import pytest

from repro.cluster.cluster import Cluster
from repro.cluster.config import ClusterConfig, SchedulerParameters
from repro.cluster.message import Message
from repro.cluster.neko import ProtocolLayer
from repro.failure_detectors.abstract import QoSDrivenFailureDetector
from repro.failure_detectors.base import FailureDetectorLayer
from repro.failure_detectors.heartbeat import HEARTBEAT, HeartbeatFailureDetector
from repro.failure_detectors.history import FailureDetectorHistory
from repro.failure_detectors.static import StaticFailureDetector


class _App(ProtocolLayer):
    """Minimal application layer sitting above a failure detector."""

    def __init__(self, sim, name):
        super().__init__(sim, name)
        self.delivered = []

    def on_deliver(self, message):
        self.delivered.append(message)


def _heartbeat_cluster(config, timeout_ms, history=None):
    cluster = Cluster(config)

    def stack(sim, pid):
        return [
            _App(sim, f"app{pid}"),
            HeartbeatFailureDetector(
                sim, timeout_ms=timeout_ms, history=history, name=f"fd{pid}"
            ),
        ]

    cluster.create_processes(stack)
    return cluster


# ----------------------------------------------------------------------
# Static failure detector (classes 1 and 2)
# ----------------------------------------------------------------------
def test_static_fd_with_no_crashes_never_suspects(sim):
    fd = StaticFailureDetector(sim)
    fd.start()
    assert fd.suspected_processes() == set()
    assert not fd.is_suspected(0)


def test_static_fd_suspects_exactly_the_crash_set(sim):
    fd = StaticFailureDetector(sim, crashed={0, 2})
    fd.start()
    assert fd.suspected_processes() == {0, 2}
    assert fd.is_suspected(0) and not fd.is_suspected(1)


def test_listeners_are_notified_once_per_change(sim):
    fd = StaticFailureDetector(sim, crashed={1})
    events = []
    fd.add_listener(lambda pid, suspected: events.append((pid, suspected)))
    fd.start()
    assert events == [(1, True)]
    fd.remove_listener(events.append)  # removing an unknown listener is a no-op


# ----------------------------------------------------------------------
# Heartbeat failure detector (class 3)
# ----------------------------------------------------------------------
def test_heartbeat_fd_validates_parameters(sim):
    with pytest.raises(ValueError):
        HeartbeatFailureDetector(sim, timeout_ms=0.0)
    with pytest.raises(ValueError):
        HeartbeatFailureDetector(sim, timeout_ms=5.0, heartbeat_period_ms=0.0)


def test_heartbeat_period_defaults_to_0_7_t(sim):
    fd = HeartbeatFailureDetector(sim, timeout_ms=10.0)
    assert fd.heartbeat_period_ms == pytest.approx(7.0)


def test_heartbeats_keep_correct_processes_trusted(quiet_scheduler_config):
    cluster = _heartbeat_cluster(quiet_scheduler_config, timeout_ms=50.0)
    cluster.start_all()
    cluster.run(until=300.0)
    for process in cluster.processes:
        fd = process.layer(HeartbeatFailureDetector)
        assert fd.suspected_processes() == set()
        assert fd.heartbeats_sent > 3
        assert fd.heartbeats_received > 3


def test_heartbeat_messages_are_consumed_not_delivered_to_the_application(
    quiet_scheduler_config,
):
    cluster = _heartbeat_cluster(quiet_scheduler_config, timeout_ms=50.0)
    cluster.start_all()
    cluster.run(until=200.0)
    for process in cluster.processes:
        assert all(
            message.msg_type != HEARTBEAT
            for message in process.layer(_App).delivered
        )


def test_silent_process_is_eventually_suspected_and_unsuspected_on_contact(
    quiet_scheduler_config,
):
    history = FailureDetectorHistory()
    cluster = _heartbeat_cluster(quiet_scheduler_config, timeout_ms=20.0, history=history)
    cluster.start_all()
    # Crash process 2 after its heartbeats have started flowing.
    cluster.sim.schedule(50.0, cluster.crash_process, 2)
    cluster.run(until=200.0)
    fd0 = cluster.process(0).layer(HeartbeatFailureDetector)
    assert fd0.is_suspected(2)
    assert not fd0.is_suspected(1)
    assert any(t.monitored == 2 and t.suspected for t in history.transitions)


def test_application_messages_also_reset_the_timeout(quiet_scheduler_config):
    """A process that sends application traffic is not suspected even if its
    heartbeats are disabled (the paper: reception of *any* message resets the
    timer)."""
    cluster = Cluster(quiet_scheduler_config)

    def stack(sim, pid):
        period = 1_000_000.0 if pid == 2 else 20.0  # process 2 sends no heartbeats
        return [
            _App(sim, f"app{pid}"),
            HeartbeatFailureDetector(
                sim, timeout_ms=30.0, heartbeat_period_ms=period, name=f"fd{pid}"
            ),
        ]

    cluster.create_processes(stack)
    cluster.start_all()

    app2 = cluster.process(2).layer(_App)

    def chatter():
        app2.send_down(Message(sender=2, destination=0, msg_type="app-data"))
        cluster.sim.schedule(10.0, chatter)

    cluster.sim.schedule(1.0, chatter)
    cluster.run(until=300.0)
    fd0 = cluster.process(0).layer(HeartbeatFailureDetector)
    fd1 = cluster.process(1).layer(HeartbeatFailureDetector)
    assert not fd0.is_suspected(2)  # kept alive by application messages
    assert fd1.is_suspected(2)  # process 1 got neither heartbeats nor data


def test_wrong_suspicions_recorded_in_history_with_small_timeout():
    config = ClusterConfig(n_processes=3, seed=5)
    history = FailureDetectorHistory()
    cluster = _heartbeat_cluster(config, timeout_ms=1.0, history=history)
    cluster.start_all()
    cluster.run(until=300.0)
    # With T = 1 ms and ~millisecond scheduling granularity, wrong
    # suspicions are inevitable although no process crashed.
    assert len(history.transitions) > 0
    suspects = [t for t in history.transitions if t.suspected]
    recoveries = [t for t in history.transitions if not t.suspected]
    assert suspects and recoveries


# ----------------------------------------------------------------------
# QoS-driven (abstract) failure detector
# ----------------------------------------------------------------------
def test_qos_driven_fd_validates_parameters(sim):
    with pytest.raises(ValueError):
        QoSDrivenFailureDetector(sim, mistake_recurrence_time=1.0, mistake_duration=2.0)


def test_qos_driven_fd_suspects_crashed_processes_forever(quiet_scheduler_config):
    cluster = Cluster(quiet_scheduler_config)
    cluster.create_processes(
        lambda sim, pid: [
            _App(sim, f"app{pid}"),
            QoSDrivenFailureDetector(
                sim,
                mistake_recurrence_time=1e9,
                mistake_duration=1e3,
                crashed={1},
                name=f"qfd{pid}",
            ),
        ]
    )
    cluster.crash_process(1)
    cluster.start_all()
    cluster.run(until=10.0)
    fd0 = cluster.process(0).layer(QoSDrivenFailureDetector)
    assert fd0.is_suspected(1)
    assert not fd0.is_suspected(2)


def test_qos_driven_fd_time_in_suspect_state_matches_the_qos_ratio(
    quiet_scheduler_config,
):
    history = FailureDetectorHistory()
    cluster = Cluster(quiet_scheduler_config)
    cluster.create_processes(
        lambda sim, pid: [
            _App(sim, f"app{pid}"),
            QoSDrivenFailureDetector(
                sim,
                mistake_recurrence_time=10.0,
                mistake_duration=2.0,
                kind="exponential",
                history=history,
                name=f"qfd{pid}",
            ),
        ]
    )
    cluster.start_all()
    horizon = 4000.0
    cluster.run(until=horizon)
    # Expected fraction of time suspected: T_M / T_MR = 0.2.
    fraction = history.time_suspected(0, 1, horizon) / horizon
    assert fraction == pytest.approx(0.2, abs=0.06)


def test_qos_driven_fd_deterministic_kind_produces_regular_cycles(quiet_scheduler_config):
    history = FailureDetectorHistory()
    cluster = Cluster(quiet_scheduler_config)
    cluster.create_processes(
        lambda sim, pid: [
            _App(sim, f"a{pid}"),
            QoSDrivenFailureDetector(
                sim,
                mistake_recurrence_time=10.0,
                mistake_duration=2.0,
                kind="deterministic",
                history=history,
                name=f"qfd{pid}",
            ),
        ]
    )
    cluster.start_all()
    cluster.run(until=200.0)
    intervals = history.suspicion_intervals(0, 1, 200.0)
    assert intervals
    durations = [end - start for start, end in intervals if end < 200.0]
    assert all(d == pytest.approx(2.0, abs=1e-6) for d in durations)
