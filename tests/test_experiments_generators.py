"""Smoke tests of the per-figure experiment generators.

These use tiny settings: the goal is to verify that every generator runs end
to end, returns well-formed data and renders a textual report -- the
shape-level assertions live in ``test_reproduction_shapes.py``.
"""

from __future__ import annotations

import math

import pytest

from repro.experiments.figure6 import format_figure6, run_figure6
from repro.experiments.figure7 import (
    format_latency_means,
    run_figure7a,
    run_figure7b,
    run_latency_means,
)
from repro.experiments.figure8 import format_figure8, run_figure8
from repro.experiments.figure9 import format_figure9, run_figure9
from repro.experiments.table1 import SCENARIOS, format_table1, run_table1


@pytest.fixture(scope="module")
def settings():
    from repro.experiments.settings import ExperimentSettings

    return ExperimentSettings(
        executions=12,
        class3_executions=8,
        replications=12,
        measured_process_counts=(3,),
        simulated_process_counts=(3,),
        class3_process_counts=(3,),
        timeouts_ms=(2.0, 30.0),
        t_send_candidates_ms=(0.01, 0.025),
        delay_probes=60,
        seed=2,
    )


def test_figure6_generator_and_report(settings):
    result = run_figure6(settings, broadcast_process_counts=(3,))
    assert len(result.unicast_delays) == settings.delay_probes
    assert set(result.broadcast_delays_by_n) == {3}
    assert result.unicast_cdf().min > 0
    assert result.broadcast_cdf(3).mean() > result.unicast_cdf().mean()
    params = result.san_parameters()
    assert params.unicast_fit.low1 > 0
    report = format_figure6(result)
    assert "unicast" in report and "broadcast to 3" in report


def test_figure7a_generator(settings):
    result = run_figure7a(settings)
    assert set(result.latencies_by_n) == {3}
    assert len(result.latencies_by_n[3]) == settings.executions
    assert 0.1 < result.mean(3) < 10.0
    assert result.cdf(3).n == settings.executions


def test_figure7b_generator_reuses_measured_data(settings):
    measured = [0.6, 0.7, 0.8, 0.65, 0.75] * 4
    result = run_figure7b(settings, n_processes=3, measured_latencies=measured)
    assert result.best_t_send_ms in settings.t_send_candidates_ms
    assert set(result.simulated_latencies_by_t_send) == set(settings.t_send_candidates_ms)
    assert result.measured_cdf().n == len(measured)
    for t_send in settings.t_send_candidates_ms:
        assert len(result.simulated_latencies_by_t_send[t_send]) == settings.replications


def test_latency_means_generator_and_report(settings):
    result = run_latency_means(settings)
    assert 3 in result.measured and 3 in result.simulated
    rows = result.rows()
    assert rows[0][0] == 3
    assert rows[0][1] > 0 and rows[0][2] > 0
    report = format_latency_means(result)
    assert "measured" in report


def test_table1_generator_and_report(settings):
    result = run_table1(settings)
    labels = [label for label, _ in SCENARIOS]
    for label in labels:
        assert result.measured_mean(label, 3) > 0
        assert result.simulated_mean(label, 3) > 0
    assert len(result.row("no crash")) == 2  # one measured + one simulated column
    report = format_table1(result)
    assert "coordinator crash" in report


def test_figure8_generator_and_report(settings):
    result = run_figure8(settings)
    assert set(result.points) == {(3, 2.0), (3, 30.0)}
    recurrence = dict(result.recurrence_series(3))
    assert recurrence[2.0] > 0
    duration = dict(result.duration_series(3))
    assert duration[2.0] >= 0
    report = format_figure8(result)
    assert "mistake recurrence" in report


def test_figure9_generator_reuses_figure8_measurements(settings):
    figure8 = run_figure8(settings)
    result = run_figure9(settings, figure8=figure8)
    assert set(result.points) == set(figure8.points)
    for (_n, _timeout), point in result.points.items():
        assert point.measured_latency_ms > 0 or math.isnan(point.measured_latency_ms)
        assert set(point.simulated_latency_ms) <= {"deterministic", "exponential"}
    measured = dict(result.measured_series(3))
    assert set(measured) == {2.0, 30.0}
    report = format_figure9(result)
    assert "n = 3" in report
