"""Tests of the SimProcess timer helpers."""

from __future__ import annotations

from repro.des.process import SimProcess


def test_set_timer_fires_after_delay(sim):
    process = SimProcess(sim, "p")
    fired = []
    process.set_timer("t", 3.0, lambda: fired.append(sim.now))
    sim.run()
    assert fired == [3.0]


def test_rearming_a_timer_cancels_the_previous_one(sim):
    process = SimProcess(sim, "p")
    fired = []
    process.set_timer("t", 3.0, fired.append, "first")
    process.set_timer("t", 5.0, fired.append, "second")
    sim.run()
    assert fired == ["second"]


def test_cancel_timer(sim):
    process = SimProcess(sim, "p")
    fired = []
    process.set_timer("t", 1.0, fired.append, "x")
    assert process.cancel_timer("t")
    sim.run()
    assert fired == []
    assert not process.cancel_timer("t")


def test_timer_pending_reflects_state(sim):
    process = SimProcess(sim, "p")
    process.set_timer("t", 1.0, lambda: None)
    assert process.timer_pending("t")
    sim.run()
    assert not process.timer_pending("t")


def test_cancel_all_timers(sim):
    process = SimProcess(sim, "p")
    fired = []
    process.set_timer("a", 1.0, fired.append, "a")
    process.set_timer("b", 2.0, fired.append, "b")
    assert process.cancel_all_timers() == 2
    sim.run()
    assert fired == []


def test_independent_timers_fire_independently(sim):
    process = SimProcess(sim, "p")
    fired = []
    process.set_timer("a", 1.0, fired.append, "a")
    process.set_timer("b", 2.0, fired.append, "b")
    sim.run()
    assert fired == ["a", "b"]


def test_timer_can_rearm_itself(sim):
    process = SimProcess(sim, "p")
    fired = []

    def tick():
        fired.append(sim.now)
        if len(fired) < 3:
            process.set_timer("tick", 1.0, tick)

    process.set_timer("tick", 1.0, tick)
    sim.run()
    assert fired == [1.0, 2.0, 3.0]


def test_now_property_tracks_simulator_clock(sim):
    process = SimProcess(sim, "p")
    sim.schedule(4.0, lambda: None)
    sim.run()
    assert process.now == 4.0
