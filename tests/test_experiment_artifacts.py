"""Tests of the structured artifact layer.

The expensive part -- every registered experiment running at smoke scale
through the real CLI with ``--output`` -- happens once in a module-scoped
fixture; the tests then validate the emitted JSON against the artifact
schema, round-trip the manifests, parse the CSV series, and check the
written text reports against the library rendering path byte for byte.
"""

from __future__ import annotations

import csv
import io
import json
from contextlib import redirect_stdout

import pytest

from repro import cli
from repro.experiments import registry
from repro.experiments.artifacts import (
    ARTIFACT_SCHEMA,
    ArtifactValidationError,
    PointTiming,
    RunManifest,
    json_safe,
    render_csv,
    validate_artifact,
    validate_instance,
)
from repro.experiments.settings import ExperimentSettings


@pytest.fixture(scope="module")
def smoke_cli_artifacts(tmp_path_factory):
    """Run every registered experiment at smoke scale through the CLI."""
    output_dir = tmp_path_factory.mktemp("artifacts")
    stdout = io.StringIO()
    with redirect_stdout(stdout):
        code = cli.main(["all", "--scale", "smoke", "--jobs", "0", "--output", str(output_dir)])
    assert code == 0
    return output_dir


# ----------------------------------------------------------------------
# The full pipeline at smoke scale
# ----------------------------------------------------------------------
def test_every_experiment_emits_a_schema_valid_json_artifact(smoke_cli_artifacts):
    for name in registry.names():
        path = smoke_cli_artifacts / name / "result.json"
        payload = json.loads(path.read_text())
        validate_artifact(payload)
        assert payload["experiment"] == name
        assert payload["data"], f"{name}: empty data object"


def test_every_manifest_round_trips_and_records_provenance(smoke_cli_artifacts):
    smoke_hash = ExperimentSettings.smoke().settings_hash()
    for name in registry.names():
        path = smoke_cli_artifacts / name / "manifest.json"
        manifest = RunManifest.from_json(path.read_text())
        assert RunManifest.from_json(manifest.to_json()) == manifest
        assert manifest.experiment == name
        assert manifest.scale == "smoke"
        assert manifest.seed == ExperimentSettings.smoke().seed
        assert manifest.jobs == 0
        assert manifest.settings_hash == smoke_hash
        assert manifest.points, f"{name}: no per-point timings"
        assert manifest.wall_clock_seconds > 0


def test_every_tabular_experiment_emits_parsable_csv(smoke_cli_artifacts):
    for spec in registry.iter_specs():
        path = smoke_cli_artifacts / spec.name / "result.csv"
        if spec.to_rows is None:
            assert not path.exists()
            continue
        rows = list(csv.reader(path.read_text().splitlines()))
        assert len(rows) >= 2, f"{spec.name}: header plus at least one data row"
        assert all(len(row) == len(rows[0]) for row in rows)


def test_written_reports_match_the_library_rendering_byte_for_byte(smoke_cli_artifacts):
    """The artifact pipeline must not perturb the paper-faithful text.

    Re-render the cheap deterministic experiments directly through their
    public ``run_*``/``format_*`` API and compare with what the CLI wrote.
    (``solvercompare`` is excluded: its report embeds wall-clock timings.)
    """
    from repro.experiments.figure6 import format_figure6, run_figure6
    from repro.experiments.figure7 import format_figure7a, run_figure7a
    from repro.experiments.figure8 import format_figure8, run_figure8

    smoke = ExperimentSettings.smoke()
    for name, run, render in (
        ("figure6", run_figure6, format_figure6),
        ("figure7a", run_figure7a, format_figure7a),
        ("figure8", run_figure8, format_figure8),
    ):
        written = (smoke_cli_artifacts / name / "report.txt").read_text()
        expected = render(run(smoke))
        # The writer guarantees exactly one trailing newline.
        assert written == (expected if expected.endswith("\n") else expected + "\n")


def test_stdout_json_format_is_schema_valid(capsys):
    assert cli.main(["figure6", "--scale", "smoke", "--format", "json"]) == 0
    payload = json.loads(capsys.readouterr().out)
    validate_artifact(payload)
    assert payload["experiment"] == "figure6"


def test_stdout_csv_format_parses(capsys):
    assert cli.main(["figure7a", "--scale", "smoke", "--format", "csv"]) == 0
    rows = list(csv.reader(capsys.readouterr().out.splitlines()))
    assert rows[0][0] == "n_processes"
    assert len(rows) >= 2


# ----------------------------------------------------------------------
# Schema validator and JSON normalisation units
# ----------------------------------------------------------------------
def test_validator_rejects_missing_required_keys():
    with pytest.raises(ArtifactValidationError, match="missing required key"):
        validate_artifact({"schema": "repro.experiment-artifact/v1"})


def test_validator_rejects_wrong_types_with_a_path():
    schema = {"type": "object", "properties": {"x": {"type": "integer"}}}
    with pytest.raises(ArtifactValidationError, match=r"\$\.x"):
        validate_instance({"x": "not-an-int"}, schema)


def test_validator_rejects_wrong_schema_constant():
    payload = {
        "schema": "something-else/v9",
        "experiment": "figure6",
        "description": "",
        "data": {},
        "manifest": {},
    }
    with pytest.raises(ArtifactValidationError, match="expected constant"):
        validate_instance(payload, ARTIFACT_SCHEMA)


def test_validator_accepts_integer_where_number_is_expected():
    validate_instance({"x": 3}, {"type": "object", "properties": {"x": {"type": "number"}}})


def test_json_safe_normalises_non_finite_floats_and_tuples():
    value = {"a": float("nan"), "b": float("inf"), "c": (1, 2), 3: "key"}
    assert json_safe(value) == {"a": None, "b": None, "c": [1, 2], "3": "key"}


def test_render_csv_writes_empty_cells_for_none_and_non_finite_floats():
    """CSV mirrors the JSON layer's non-finite -> null rule (no 'inf'/'nan')."""
    text = render_csv(
        (["a", "b"], [[1, None], ["x", 2.5], [float("inf"), float("nan")]])
    )
    assert text == "a,b\n1,\nx,2.5\n,\n"


def test_manifest_round_trip_from_synthetic_values():
    manifest = RunManifest(
        experiment="figure6",
        scale="quick",
        seed=42,
        jobs=None,
        settings_hash="abc123",
        settings={"executions": 8},
        started_at="2026-07-27T00:00:00Z",
        wall_clock_seconds=1.25,
        points=(PointTiming(label="p0", indices=(6, 0), seconds=0.5, cached=True),),
        version="1.0.0",
    )
    restored = RunManifest.from_json(manifest.to_json())
    assert restored == manifest
    assert restored.points[0].indices == (6, 0)
