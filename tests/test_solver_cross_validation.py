"""Cross-validation: the analytic solver as an exact oracle for the
simulative solver.

The contract (and the PR's acceptance criterion): on every exponential
validation model, the exact analytic value of every reward must fall
inside the simulative solver's 95% confidence interval, and the analytic
solution must be at least 10x faster than a 1000-replication simulation.

The validation suite spans the three layers of the paper's model stack
(:mod:`repro.experiments.solver_compare`):

* the failure-detector module (built from ``sanmodels.fd_model``),
* the three-stage network path (built from ``sanmodels.network_model``),
* the fully composed n = 3 consensus model (built from every
  ``sanmodels`` submodel).
"""

from __future__ import annotations

import math
import time

import pytest

from repro.experiments.solver_compare import (
    COMPARE_MODELS,
    CompareModelSpec,
    compare_model_spec,
)
from repro.san import AnalyticSolver, SimulativeSolver
from repro.sanmodels import exponential_unicast_burst_model
from repro.sanmodels.exponential import DELIVERED_PLACE

CROSS_VALIDATION_REPLICATIONS = 1_000
SPEEDUP_FLOOR = 10.0


def _solve_both(spec: CompareModelSpec, replications: int, seed: int):
    analytic = AnalyticSolver(
        model_factory=spec.model_factory,
        reward_factory=spec.reward_factory,
        stop_predicate=spec.stop_predicate,
        max_time=spec.max_time,
        confidence=0.95,
    )
    started = time.perf_counter()
    exact = analytic.solve()
    analytic_seconds = time.perf_counter() - started

    simulative = SimulativeSolver(
        model_factory=spec.model_factory,
        reward_factory=spec.reward_factory,
        stop_predicate=spec.stop_predicate,
        max_time=spec.max_time,
        seed=seed,
        confidence=0.95,
    )
    started = time.perf_counter()
    sampled = simulative.solve(replications=replications)
    simulative_seconds = time.perf_counter() - started
    return exact, sampled, analytic_seconds, simulative_seconds


@pytest.mark.parametrize("spec", COMPARE_MODELS, ids=lambda spec: spec.key)
def test_analytic_agrees_with_simulative_within_95_ci_and_is_10x_faster(spec):
    exact, sampled, analytic_seconds, simulative_seconds = _solve_both(
        spec, CROSS_VALIDATION_REPLICATIONS, seed=5
    )
    for reward_name in spec.reward_names:
        value = exact.mean(reward_name)
        interval = sampled.interval(reward_name)
        assert math.isfinite(value), f"{spec.key}/{reward_name} not finite"
        assert interval.contains(value), (
            f"{spec.key}/{reward_name}: exact {value:.6g} outside the "
            f"simulative 95% CI {interval}"
        )
    speedup = simulative_seconds / analytic_seconds
    assert speedup >= SPEEDUP_FLOOR, (
        f"{spec.key}: analytic solution only {speedup:.1f}x faster than "
        f"{CROSS_VALIDATION_REPLICATIONS}-replication simulation "
        f"({analytic_seconds:.4f}s vs {simulative_seconds:.4f}s)"
    )


def test_validation_suite_covers_at_least_three_models():
    assert len(COMPARE_MODELS) >= 3
    # At least one model is the full composition of sanmodels submodels.
    assert any(spec.key == "consensus-n3" for spec in COMPARE_MODELS)


def test_compare_model_spec_lookup():
    assert compare_model_spec("fd-pair").key == "fd-pair"
    with pytest.raises(KeyError):
        compare_model_spec("no-such-model")


def test_seed_independence_of_the_agreement():
    # A second, independent simulative seed must also bracket the exact
    # value -- guards against the first seed passing by coincidence.
    spec = compare_model_spec("unicast-burst")
    exact, sampled, *_ = _solve_both(spec, 400, seed=777)
    for reward_name in spec.reward_names:
        assert sampled.interval(reward_name).contains(exact.mean(reward_name))


def test_lossy_burst_first_passage_is_infinite_but_flagged():
    # With message loss the "all delivered" predicate is not almost-surely
    # reached: the analytic solver reports an infinite mean and a hitting
    # probability matching the closed form (1 - loss_rate)^messages.
    loss_rate = 0.2
    messages = 3

    def lossy_model():
        return exponential_unicast_burst_model(
            messages=messages, loss_rate=loss_rate
        )

    def all_delivered(marking) -> bool:
        return marking[DELIVERED_PLACE] >= messages

    solver = AnalyticSolver(
        model_factory=lossy_model,
        reward_factory=lambda: [],
        stop_predicate=all_delivered,
    )
    with pytest.warns(UserWarning, match="probability"):
        mean, probability = solver.first_passage_time(all_delivered)
    assert mean == math.inf
    assert probability == pytest.approx((1.0 - loss_rate) ** messages)
