"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The scale is
controlled by the ``REPRO_EXPERIMENT_SCALE`` environment variable
(``smoke`` -- the default here, so that ``pytest benchmarks/`` stays fast --
``quick`` or ``full``); the benchmark bodies print the regenerated rows so
the run doubles as a report.
"""

from __future__ import annotations

import pytest

from repro.experiments.settings import ExperimentSettings


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Experiment scale used by all benchmarks (defaults to ``smoke``)."""
    return ExperimentSettings.from_environment(default="smoke")


def run_once(benchmark, function, *args, **kwargs):
    """Run ``function`` exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(function, args=args, kwargs=kwargs, rounds=1, iterations=1)
