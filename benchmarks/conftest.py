"""Shared fixtures for the benchmark harness.

Every benchmark regenerates one table or figure of the paper.  The scale is
controlled by the ``REPRO_EXPERIMENT_SCALE`` environment variable
(``smoke`` -- the default here, so that ``pytest benchmarks/`` stays fast --
``quick`` or ``full``); the benchmark bodies print the regenerated rows so
the run doubles as a report.

All benchmark helpers live in the installed :mod:`repro.benchmarking`
module (no imports through the repository root's implicit ``sys.path``
entry), and collection refuses to pick up stale ``__pycache__`` directories
as test packages -- both bit us before.
"""

from __future__ import annotations

import pytest

from repro.experiments.settings import ExperimentSettings

collect_ignore_glob = ["__pycache__/*"]


@pytest.fixture(scope="session")
def settings() -> ExperimentSettings:
    """Experiment scale used by all benchmarks (defaults to ``smoke``)."""
    return ExperimentSettings.from_environment(default="smoke")


def pytest_collection_modifyitems(items):
    """Fail loudly if bytecode caches ever get collected as test modules."""
    polluted = sorted(
        str(item.fspath) for item in items if "__pycache__" in str(item.fspath)
    )
    assert not polluted, (
        "collected test modules from __pycache__ directories: "
        + ", ".join(polluted)
    )
