"""Benchmark: lock-step batched execution vs the scalar replication loop.

The batched executor (:mod:`repro.san.batched`) earns its keep on exactly
the workload the scalar hot-path overhaul already optimized: many
replications of the n = 3 consensus SAN.  This benchmark times
``solve(strategy="batched")`` against the scalar ``solve()`` on the same
seeds and asserts the required >= 2x speedup -- after checking that the
two produce *bit-identical* per-replication rewards (the batched
draw-order contract), so the speed never comes from statistical drift.
"""

from __future__ import annotations

import time

from repro.benchmarking import run_once
from repro.san import Case, Place, SANModel, TimedActivity
from repro.san.rewards import ActivityCounter
from repro.san.solver import SimulativeSolver
from repro.sanmodels import ConsensusSANExperiment
from repro.stats.distributions import BimodalUniform, Mixture, Shifted, Uniform

#: Replications per timing leg.  Large enough that the batched executor's
#: per-batch compilation and matrix set-up amortise (they do by ~50).
REPLICATIONS = 200
#: Required speedup of the batched strategy over the scalar loop.
REQUIRED_SPEEDUP = 2.0
#: Required speedup of batched (pre-drawn) bimodal delays over the same
#: delays forced onto the per-completion generic fallback.
REQUIRED_BIMODAL_SPEEDUP = 1.5


def _best_of(function, attempts=3):
    """Best-of-N wall clock (damps noise from shared CI runners)."""
    best = float("inf")
    result = None
    for _attempt in range(attempts):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_bench_batched_consensus(benchmark):
    experiment = ConsensusSANExperiment(n_processes=3, seed=1)
    scalar_solver = experiment.solver()
    batched_solver = experiment.solver()

    # Warm both paths off the clock: model build, compiled tables, caches.
    scalar_solver.run_replication(0)
    batched_solver.run_batch([0])

    def solve_batched():
        return batched_solver.solve(replications=REPLICATIONS, strategy="batched")

    def solve_scalar():
        return scalar_solver.solve(replications=REPLICATIONS)

    fast_result, fast_s = _best_of(solve_batched)
    run_once(benchmark, solve_batched, replications=REPLICATIONS)
    slow_result, slow_s = _best_of(solve_scalar)

    # Determinism first: equal statistical precision means *identical*
    # per-replication results here, by the batched draw-order contract.
    assert [r.rewards for r in fast_result.replications] == [
        r.rewards for r in slow_result.replications
    ]

    speedup = slow_s / fast_s if fast_s > 0 else float("inf")
    print(
        f"\nconsensus n=3, {REPLICATIONS} replications: batched {fast_s:.3f} s "
        f"({REPLICATIONS / fast_s:.0f} reps/s), scalar {slow_s:.3f} s "
        f"({REPLICATIONS / slow_s:.0f} reps/s), speedup {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP}x over the scalar executor, "
        f"measured {speedup:.2f}x"
    )


# ----------------------------------------------------------------------
# Bimodal-delay leg: the paper's end-to-end delay fit is a bi-modal
# uniform, which PR 9 made batchable (all-Uniform mixtures pre-draw via
# the inverse-CDF scheme).  This leg pins that win: the same drain model
# with the same statistical delays, once with the batchable
# BimodalUniform and once with an equivalent mixture whose Shifted(0, .)
# component forces the per-completion generic fallback.
# ----------------------------------------------------------------------
#: Tokens drained per chain, i.e. bimodal duration draws per (chain,
#: replication).  Sized so duration sampling dominates each replication.
DRAIN_TOKENS = 40
#: Independent drain chains per replication (gives the lock-step matrix
#: several concurrent timed activities per row).
DRAIN_CHAINS = 4


def _drain_model_factory(generic: bool):
    """A factory of drain models: N chains each moving T tokens through
    one bimodal-delay activity; a replication ends when the model drains.
    """
    if generic:
        # Statistically identical to BimodalUniform(), but the Shifted
        # component is not a plain Uniform, so supports_batch() is False
        # and every draw goes through the per-completion scalar path.
        delay = Mixture(
            [(0.8, Uniform(0.1, 0.13)), (0.2, Shifted(0.0, Uniform(0.145, 0.35)))]
        )
    else:
        delay = BimodalUniform()

    def build() -> SANModel:
        model = SANModel("bimodal-drain" + ("-generic" if generic else ""))
        for chain in range(DRAIN_CHAINS):
            pending, done = f"pending{chain}", f"done{chain}"
            model.add_place(Place(pending, DRAIN_TOKENS))
            model.add_place(Place(done, 0))
            model.add_activity(
                TimedActivity(
                    f"hop{chain}",
                    delay,
                    input_arcs=[pending],
                    cases=[Case.build(output_arcs=[done])],
                )
            )
        return model

    return build


def _drain_solver(generic: bool) -> SimulativeSolver:
    return SimulativeSolver(
        model_factory=_drain_model_factory(generic),
        reward_factory=lambda: [ActivityCounter(name="completions")],
        stop_predicate=None,  # replications end when the model drains
        max_time=1e9,
        seed=5,
        reuse_model=True,
    )


def test_bench_batched_bimodal_delays(benchmark):
    batchable_solver = _drain_solver(generic=False)
    generic_solver = _drain_solver(generic=True)

    # Warm both paths off the clock: model build, compiled tables, caches.
    batchable_solver.run_batch([0])
    generic_solver.run_batch([0])

    def solve_batchable():
        return batchable_solver.solve(replications=REPLICATIONS, strategy="batched")

    def solve_generic():
        return generic_solver.solve(replications=REPLICATIONS, strategy="batched")

    fast_result, fast_s = _best_of(solve_batchable)
    run_once(benchmark, solve_batchable, replications=REPLICATIONS)
    slow_result, slow_s = _best_of(solve_generic)

    # Both legs drain every token -- only the delay *draw path* differs.
    expected = float(DRAIN_TOKENS * DRAIN_CHAINS)
    assert all(
        r.rewards["completions"] == expected for r in fast_result.replications
    )
    assert all(
        r.rewards["completions"] == expected for r in slow_result.replications
    )

    speedup = slow_s / fast_s if fast_s > 0 else float("inf")
    print(
        f"\nbimodal drain, {REPLICATIONS} replications: pre-drawn {fast_s:.3f} s "
        f"({REPLICATIONS / fast_s:.0f} reps/s), generic fallback {slow_s:.3f} s "
        f"({REPLICATIONS / slow_s:.0f} reps/s), speedup {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_BIMODAL_SPEEDUP, (
        f"expected sample_batch to beat the generic fallback by >= "
        f"{REQUIRED_BIMODAL_SPEEDUP}x, measured {speedup:.2f}x"
    )
