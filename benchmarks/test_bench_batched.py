"""Benchmark: lock-step batched execution vs the scalar replication loop.

The batched executor (:mod:`repro.san.batched`) earns its keep on exactly
the workload the scalar hot-path overhaul already optimized: many
replications of the n = 3 consensus SAN.  This benchmark times
``solve(strategy="batched")`` against the scalar ``solve()`` on the same
seeds and asserts the required >= 2x speedup -- after checking that the
two produce *bit-identical* per-replication rewards (the batched
draw-order contract), so the speed never comes from statistical drift.
"""

from __future__ import annotations

import time

from repro.benchmarking import run_once
from repro.sanmodels import ConsensusSANExperiment

#: Replications per timing leg.  Large enough that the batched executor's
#: per-batch compilation and matrix set-up amortise (they do by ~50).
REPLICATIONS = 200
#: Required speedup of the batched strategy over the scalar loop.
REQUIRED_SPEEDUP = 2.0


def _best_of(function, attempts=3):
    """Best-of-N wall clock (damps noise from shared CI runners)."""
    best = float("inf")
    result = None
    for _attempt in range(attempts):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_bench_batched_consensus(benchmark):
    experiment = ConsensusSANExperiment(n_processes=3, seed=1)
    scalar_solver = experiment.solver()
    batched_solver = experiment.solver()

    # Warm both paths off the clock: model build, compiled tables, caches.
    scalar_solver.run_replication(0)
    batched_solver.run_batch([0])

    def solve_batched():
        return batched_solver.solve(replications=REPLICATIONS, strategy="batched")

    def solve_scalar():
        return scalar_solver.solve(replications=REPLICATIONS)

    fast_result, fast_s = _best_of(solve_batched)
    run_once(benchmark, solve_batched)
    slow_result, slow_s = _best_of(solve_scalar)

    # Determinism first: equal statistical precision means *identical*
    # per-replication results here, by the batched draw-order contract.
    assert [r.rewards for r in fast_result.replications] == [
        r.rewards for r in slow_result.replications
    ]

    speedup = slow_s / fast_s if fast_s > 0 else float("inf")
    print(
        f"\nconsensus n=3, {REPLICATIONS} replications: batched {fast_s:.3f} s "
        f"({REPLICATIONS / fast_s:.0f} reps/s), scalar {slow_s:.3f} s "
        f"({REPLICATIONS / slow_s:.0f} reps/s), speedup {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP}x over the scalar executor, "
        f"measured {speedup:.2f}x"
    )
