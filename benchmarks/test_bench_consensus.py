"""Benchmark: the consensus replication hot loop and the analytic pipeline.

This is the workload the DES/SAN hot-path overhaul targets: the n = 3
consensus SAN executed over many replications (the inner loop of every
figure-7/table-1 point).  The benchmark times the optimized executor,
then times the :class:`~repro.san.reference.ReferenceExecutor` baseline
(full re-evaluation after every completion, one model build per
replication, unbatched draws) on the same seeds and asserts the required
>= 2x speedup -- after checking that both produce *bit-identical* rewards,
so the speed never comes from semantic drift.

A second benchmark covers the analytic side: state-space generation plus
an exact solve of the exponentialized n = 3 model.
"""

from __future__ import annotations

import time

from repro.benchmarking import run_once
from repro.san.analytic import AnalyticSolver
from repro.san.reference import ReferenceExecutor
from repro.san.solver import SimulativeSolver
from repro.san.statespace import generate_state_space
from repro.sanmodels import ConsensusSANExperiment
from repro.sanmodels.consensus_model import consensus_stop_predicate, latency_reward
from repro.sanmodels.exponential import exponential_consensus_model

#: Replications per timing leg (one leg is well under a second optimized).
REPLICATIONS = 100
#: Required speedup of the optimized executor over the reference baseline.
REQUIRED_SPEEDUP = 2.0


def _run_replications(solver: SimulativeSolver, count: int = REPLICATIONS):
    return [solver.run_replication(index) for index in range(count)]


def _best_of(function, attempts=3):
    """Best-of-N wall clock (damps noise from shared CI runners).

    This benchmark is also collected by the tier-1 test run, so the
    speedup assertion must not flake on a throttled runner: each leg is
    ~0.15 s, three attempts are cheap, and the measured margin (~3x
    against the 2x bound) absorbs what best-of-three does not.
    """
    best = float("inf")
    result = None
    for _attempt in range(attempts):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_bench_consensus_replications(benchmark):
    experiment = ConsensusSANExperiment(n_processes=3, seed=1)
    optimized = experiment.solver()
    reference = SimulativeSolver(
        model_factory=experiment.model_factory,
        reward_factory=experiment.reward_factory,
        stop_predicate=consensus_stop_predicate,
        max_time=experiment.max_time_ms,
        seed=experiment.seed,
        executor_class=ReferenceExecutor,
    )

    # Warm both paths (stream caches, model-structure cache) off the clock.
    optimized.run_replication(0)
    reference.run_replication(0)

    fast_results, fast_s = _best_of(lambda: _run_replications(optimized))
    run_once(benchmark, _run_replications, optimized)
    slow_results, slow_s = _best_of(lambda: _run_replications(reference))

    # Determinism first: the optimized executor must match the reference
    # replication for replication before its speed counts for anything.
    assert [result.rewards for result in fast_results] == [
        result.rewards for result in slow_results
    ]

    speedup = slow_s / fast_s if fast_s > 0 else float("inf")
    print(
        f"\nconsensus n=3, {REPLICATIONS} replications: optimized {fast_s:.3f} s "
        f"({REPLICATIONS / fast_s:.0f} reps/s), reference {slow_s:.3f} s "
        f"({REPLICATIONS / slow_s:.0f} reps/s), speedup {speedup:.2f}x"
    )
    assert speedup >= REQUIRED_SPEEDUP, (
        f"expected >= {REQUIRED_SPEEDUP}x over the reference executor, "
        f"measured {speedup:.2f}x"
    )


def test_bench_consensus_statespace(benchmark):
    def solve_analytically():
        model = exponential_consensus_model(3)
        space = generate_state_space(model, stop_predicate=consensus_stop_predicate)
        solver = AnalyticSolver(
            model_factory=lambda: exponential_consensus_model(3),
            reward_factory=lambda: [latency_reward()],
            stop_predicate=consensus_stop_predicate,
        )
        result = solver.solve()
        return space, result

    space, result = run_once(benchmark, solve_analytically)
    print(
        f"\nstatespace: {space.n_states} states, {len(space.transitions)} "
        f"transitions; analytic latency {result.mean('latency'):.6f} ms"
    )
    assert space.n_states == 345
    assert result.mean("latency") > 0
