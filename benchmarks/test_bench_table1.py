"""Benchmark regenerating Table 1: latency under crash scenarios (§5.3)."""

from __future__ import annotations

from repro.benchmarking import run_once
from repro.experiments.table1 import format_table1, run_table1


def test_table1_crash_scenarios(benchmark, settings):
    result = run_once(benchmark, run_table1, settings)
    print()
    print("=== Table 1: latency for the crash scenarios ===")
    print(format_table1(result))
    for n in settings.measured_process_counts:
        no_crash = result.measured_mean("no crash", n)
        coordinator = result.measured_mean("coordinator crash", n)
        assert coordinator > no_crash, "a coordinator crash must increase latency"
        if n >= 5:
            participant = result.measured_mean("participant crash", n)
            assert participant < coordinator, (
                "a participant crash must cost less than a coordinator crash"
            )
            assert participant < 1.1 * no_crash, (
                "a participant crash must not be slower than the crash-free case "
                "(beyond sampling noise) for n >= 5"
            )
    for n in settings.simulated_process_counts:
        assert result.simulated_mean("coordinator crash", n) > result.simulated_mean(
            "no crash", n
        )
