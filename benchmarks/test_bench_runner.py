"""Benchmark: serial vs. parallel execution of a Figure 8 sweep.

Runs the same multi-point class-3 QoS sweep through the replication engine
once with ``jobs=1`` (the serial fallback) and once with ``jobs=4`` (the
process pool), reports the wall-clock throughput of both, and verifies that
the results are bit-for-bit identical.  On a machine with at least four
CPUs the parallel run must be more than 1.5x faster; on smaller machines
the speedup assertion is skipped (a process pool cannot beat serial
execution without spare cores) but the determinism check still runs.
"""

from __future__ import annotations

import os
import time

import pytest

from repro.experiments.figure8 import figure8_plan
from repro.experiments.runner import execute_plan
from repro.experiments.settings import ExperimentSettings

#: Worker count of the parallel leg (the acceptance target of the engine).
PARALLEL_JOBS = 4
#: Required wall-clock speedup at PARALLEL_JOBS workers on >= 4 CPUs.
REQUIRED_SPEEDUP = 1.5


def _available_cpus() -> int:
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # non-Linux
        return os.cpu_count() or 1


def _sweep_settings() -> ExperimentSettings:
    """A Figure 8 sweep with enough independent points to parallelise."""
    return ExperimentSettings(
        class3_executions=40,
        class3_process_counts=(3, 5),
        timeouts_ms=(1.0, 2.0, 5.0, 10.0),
        seed=11,
    )


def _flatten(points):
    return [
        (p.n_processes, p.timeout_ms, p.mistake_recurrence_time_ms, p.latencies_ms)
        for p in points
    ]


def _timed(function):
    """Best-of-two wall-clock time (damps noise from shared CI runners)."""
    best = float("inf")
    result = None
    for _attempt in range(2):
        started = time.perf_counter()
        result = function()
        best = min(best, time.perf_counter() - started)
    return result, best


def test_bench_runner_parallel_speedup():
    settings = _sweep_settings()
    plan = figure8_plan(settings)

    serial, serial_s = _timed(lambda: execute_plan(plan, jobs=1))
    parallel, parallel_s = _timed(lambda: execute_plan(plan, jobs=PARALLEL_JOBS))

    speedup = serial_s / parallel_s if parallel_s > 0 else float("inf")
    print(
        f"\nfigure8 sweep, {len(plan)} points: "
        f"serial {serial_s:.2f} s ({len(plan) / serial_s:.2f} points/s), "
        f"jobs={PARALLEL_JOBS} {parallel_s:.2f} s "
        f"({len(plan) / parallel_s:.2f} points/s), speedup {speedup:.2f}x "
        f"on {_available_cpus()} CPUs"
    )

    # Parallelism must never change the results.
    assert _flatten(serial) == _flatten(parallel)

    if _available_cpus() < PARALLEL_JOBS:
        pytest.skip(
            f"only {_available_cpus()} CPUs available; the {REQUIRED_SPEEDUP}x "
            f"speedup target needs {PARALLEL_JOBS}"
        )
    assert speedup > REQUIRED_SPEEDUP, (
        f"expected > {REQUIRED_SPEEDUP}x speedup at jobs={PARALLEL_JOBS}, "
        f"measured {speedup:.2f}x"
    )


def test_bench_runner_cache_makes_rerenders_free(tmp_path):
    settings = _sweep_settings()
    plan = figure8_plan(settings)

    started = time.perf_counter()
    first = execute_plan(plan, jobs=1, cache_dir=str(tmp_path))
    cold_s = time.perf_counter() - started

    started = time.perf_counter()
    second = execute_plan(plan, jobs=1, cache_dir=str(tmp_path))
    warm_s = time.perf_counter() - started

    print(
        f"\nfigure8 sweep, {len(plan)} points: cold {cold_s:.2f} s, "
        f"cached {warm_s:.3f} s ({cold_s / max(warm_s, 1e-9):.0f}x)"
    )
    assert _flatten(first) == _flatten(second)
    assert warm_s < cold_s / 2, "a fully cached re-render should be much faster"
