"""Benchmarks regenerating Figure 7 and the §5.2 mean latencies."""

from __future__ import annotations

from repro.benchmarking import run_once
from repro.experiments.figure7 import (
    format_latency_means,
    run_figure7a,
    run_figure7b,
    run_latency_means,
)


def test_figure7a_latency_cdfs_no_failures(benchmark, settings):
    result = run_once(benchmark, run_figure7a, settings)
    print()
    print("=== Figure 7(a): latency CDFs, no failures, no suspicions ===")
    print("n    mean [ms]   median [ms]   p90 [ms]")
    for n in sorted(result.latencies_by_n):
        cdf = result.cdf(n)
        print(f"{n:<4d} {cdf.mean():9.3f}   {cdf.median():11.3f}   {cdf.quantile(0.9):8.3f}")
    means = result.means()
    ns = sorted(means)
    assert all(means[a] < means[b] for a, b in zip(ns, ns[1:], strict=False)), "latency must grow with n"


def test_figure7b_t_send_calibration(benchmark, settings):
    result = run_once(benchmark, run_figure7b, settings)
    print()
    print("=== Figure 7(b): simulated latency CDFs vs. t_send (calibration) ===")
    print(f"measured mean latency (n={result.n_processes}): "
          f"{result.measured_cdf().mean():.3f} ms")
    print("t_send [ms]   simulated mean [ms]   KS distance to measurement")
    for candidate in result.calibration.candidates:
        print(
            f"{candidate.t_send_ms:11.3f}   {candidate.mean_latency_ms:19.3f}   "
            f"{candidate.ks_distance:10.3f}"
        )
    print(f"calibrated t_send = {result.best_t_send_ms} ms")
    assert result.best_t_send_ms in settings.t_send_candidates_ms


def test_latency_means_measurement_vs_simulation(benchmark, settings):
    result = run_once(benchmark, run_latency_means, settings)
    print()
    print("=== §5.2 mean latencies: measurement vs. SAN simulation ===")
    print(format_latency_means(result))
    for _n, measured, simulated in result.rows():
        assert measured > 0
        if simulated is not None:
            # Measurement and simulation must agree within a factor of two
            # (the paper reports a few percent on its own testbed).
            assert 0.5 < simulated / measured < 2.0
