"""Benchmark regenerating Figure 6: end-to-end delay distributions (§5.1)."""

from __future__ import annotations

from repro.benchmarking import run_once
from repro.experiments.figure6 import format_figure6, run_figure6


def test_figure6_end_to_end_delay_cdfs(benchmark, settings):
    result = run_once(benchmark, run_figure6, settings)
    print()
    print("=== Figure 6: end-to-end delay of unicast and broadcast messages ===")
    print(format_figure6(result))
    # Shape checks mirroring the paper: broadcasts are slower than unicasts,
    # and the unicast distribution is usable as a bi-modal uniform fit.
    assert result.broadcast_cdf(5).mean() > result.broadcast_cdf(3).mean()
    assert result.broadcast_cdf(3).mean() > result.unicast_cdf().mean()
    assert result.unicast_fit.low1 < result.unicast_fit.high2
