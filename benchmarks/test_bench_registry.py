"""Benchmark of the registry-driven artifact pipeline (end to end).

Times one experiment (Figure 6) executed through
:func:`repro.experiments.registry.run_experiment` -- the same code path
the CLI uses -- and then exercises the full structured-artifact emission:
JSON envelope (schema-validated on construction), CSV series, manifest.
"""

from __future__ import annotations

from repro.benchmarking import run_once
from repro.experiments import registry
from repro.experiments.artifacts import write_experiment_artifacts


def test_registry_artifact_pipeline(benchmark, settings, tmp_path):
    spec = registry.get("figure6")
    run = run_once(benchmark, registry.run_experiment, spec, settings=settings)
    print()
    print("=== Registry pipeline: figure6 via run_experiment ===")
    print(run.text())

    written = write_experiment_artifacts(
        str(tmp_path),
        spec.name,
        text=run.text(),
        payload=run.payload(),  # schema-validated on construction
        manifest=run.manifest,
        table=run.table(),
    )
    assert set(written) == {"text", "json", "manifest", "csv"}
    assert run.manifest.points, "per-point timings must reach the manifest"
    assert run.manifest.settings_hash == settings.settings_hash()
