"""Benchmark regenerating Figure 9: latency vs. the FD timeout (§5.4)."""

from __future__ import annotations

from repro.benchmarking import run_once
from repro.experiments.figure8 import run_figure8
from repro.experiments.figure9 import format_figure9, run_figure9


def test_figure9_latency_vs_timeout(benchmark, settings):
    # The paper derives the QoS inputs and the latencies from the same runs;
    # run Figure 8 first (untimed) and benchmark the Figure 9 pass that
    # reuses those measurements and adds the SAN simulations.
    figure8 = run_figure8(settings)
    result = run_once(benchmark, run_figure9, settings, figure8)
    print()
    print("=== Figure 9: latency vs. failure-detection timeout ===")
    print(format_figure9(result))
    for n in settings.class3_process_counts:
        series = result.measured_series(n)
        if len(series) < 2:
            continue
        latencies = [latency for _t, latency in series]
        # The latency at the smallest timeout dominates the latency at the
        # largest timeout (wrong suspicions force extra rounds).
        assert latencies[0] > latencies[-1]
    # Where SAN simulations exist, they must be positive and finite.
    for point in result.points.values():
        for value in point.simulated_latency_ms.values():
            assert value > 0
