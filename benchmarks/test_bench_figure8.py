"""Benchmark regenerating Figure 8: failure-detector QoS vs. the timeout (§5.4)."""

from __future__ import annotations

import math

from repro.benchmarking import run_once
from repro.experiments.figure8 import format_figure8, run_figure8


def test_figure8_failure_detector_qos(benchmark, settings):
    result = run_once(benchmark, run_figure8, settings)
    print()
    print("=== Figure 8: failure-detector QoS vs. timeout T (Th = 0.7 T) ===")
    print(format_figure8(result))
    for n in settings.class3_process_counts:
        series = result.recurrence_series(n)
        if len(series) < 2:
            continue
        # T_MR grows with the timeout (allowing infinities at large T).
        finite = [(t, v) for t, v in series if math.isfinite(v)]
        values = [v for _t, v in finite]
        assert values == sorted(values) or values[-1] >= values[0], (
            "mistake recurrence time must grow with the timeout"
        )
        # T_M stays bounded (the paper observes < 12 ms).
        for _t, duration in result.duration_series(n):
            assert duration < 20.0
